// The zgrab2-style scan engine (Section 4.1).
//
// Targets arrive either in real time (the AddressCollector feeds every new
// NTP-sourced address) or in bulk (the hitlist sweep, pulled in chunks).
// The engine enforces the study's ethical-scanning mechanics: a shared
// packet budget (SharedBudget — one uplink across engines, weighted fair
// borrowing), randomised 10 s - 10 min delays between the per-protocol
// probes of one target, and a 3-day blackout before any address is scanned
// again. Each protocol probe performs a full byte-level exchange through
// the protocol scanners and records one ScanRecord.
//
// Pacing is pull-based: submissions only stage *intents* in a bounded
// PendingQueue; a single coalesced pump timer (simnet::Timer — one
// re-schedulable wake slot per engine, not one heap entry per grant) wakes
// at token-availability time, pulls the due intents, and launches them
// inline against tokens acquired from the budget. An uncontended pump
// oversleeps by the budget's burst bank and launches the banked batch in
// one wake, which is what cuts a saturated sweep's event count by
// ~kPumpSlackSlots x versus a per-grant wake. A full lane applies
// backpressure to the submitter, and registered bulk sources are pulled
// chunk-by-chunk as staging room frees up, so the pending depth stays
// O(max_pending) instead of O(total targets) and `scan_token_wait_us`
// measures the real pacing delay (launch minus token accrual, bounded by
// the burst bank) rather than the position of a probe in a bulk backlog.
//
// All campaign counters (submitted / skipped / launched / completed, the
// per-protocol splits, the token-bucket wait and queue-delay histograms,
// pending depth/peak, backpressure events, pump wake-ups) are obs
// instruments; the accessors read the same cells, and a Registry in the
// config exports them labelled with the campaign dataset.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scan/budget.hpp"
#include "scan/pending_queue.hpp"
#include "scan/results.hpp"
#include "scan/retry.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace tts::obs {
class FlightRecorder;
}

namespace tts::scan {

/// One protocol prober. Implementations live in *_scanner.cpp.
class ProtocolScanner {
 public:
  using DoneFn = std::function<void(ScanRecord)>;

  virtual ~ProtocolScanner() = default;
  virtual Protocol protocol() const = 0;

  /// Run one probe. `base` carries dataset/target/time tags; fill outcome
  /// and payloads, then invoke `done` exactly once.
  virtual void probe(simnet::Network& network, const simnet::Endpoint& src,
                     ScanRecord base, DoneFn done) = 0;

  /// Engine-configured timeouts: the overall probe guard and the TCP
  /// connect give-up (defaults suit a standalone scanner; the engine
  /// overrides both from its config at construction).
  void set_timeouts(simnet::SimDuration probe_timeout,
                    simnet::SimDuration connect_timeout) {
    probe_timeout_ = probe_timeout;
    connect_timeout_ = connect_timeout;
  }

 protected:
  simnet::SimDuration probe_timeout_ = simnet::sec(8);
  simnet::SimDuration connect_timeout_ = simnet::sec(5);
};

struct ScanEngineConfig {
  /// Probe budget per second of virtual time for an engine that owns its
  /// budget privately (budget == nullptr). The paper scans at up to
  /// 100 kpps; the simulation defaults lower since its populations are
  /// scaled down by orders of magnitude.
  double max_pps = 2000;
  /// Share one uplink with other engines: acquire tokens from this budget
  /// (which must outlive the engine) instead of a private one; max_pps is
  /// then ignored. Optional.
  SharedBudget* budget = nullptr;
  /// Fair-share weight of this engine on the (shared) budget.
  double budget_weight = 1.0;
  simnet::SimDuration min_protocol_delay = simnet::sec(10);
  simnet::SimDuration max_protocol_delay = simnet::minutes(10);
  simnet::SimDuration rescan_blackout = simnet::days(3);
  /// Per-probe guard: a probe with no conclusion by then records kTimeout.
  simnet::SimDuration probe_timeout = simnet::sec(8);
  /// TCP connect give-up, passed to every scanner (must not exceed
  /// probe_timeout, or connects would outlive their own probe guard).
  simnet::SimDuration connect_timeout = simnet::sec(5);
  /// Retry schedule applied to every protocol (default: no retries) …
  RetryPolicy retry;
  /// … with optional per-protocol overrides (index by Protocol).
  std::array<std::optional<RetryPolicy>, kProtocolCount> retry_by_proto{};
  /// Per-routed-prefix circuit breaking (default off).
  BreakerConfig breaker;
  /// Per-dataset-lane cap on staged probe intents: bounds pending_depth()
  /// and therefore the engine's memory, whatever the bulk feed size.
  std::size_t max_pending = 4096;
  net::Ipv6Address scanner_address;
  Dataset dataset = Dataset::kNtp;
  /// SNI offered in TLS probes ("" = none: we scan addresses, not names).
  std::string sni;
  std::uint64_t seed = 0x5ca9;

  /// Export the engine's instruments (labelled dataset=...); must outlive
  /// the engine. Optional.
  obs::Registry* registry = nullptr;
  /// Span per probe round-trip ("probe/<proto>", virtual launch->done) plus
  /// the causal lifecycle spans: every staged probe mints a seed-stable
  /// TraceId at submission and threads it through staging, budget grant,
  /// launch, retry re-stage, breaker shed and the final record. Optional.
  obs::Tracer* tracer = nullptr;
  /// Anomaly flight recorder: breaker transitions, sheds and retry events
  /// are appended as typed events (trace-linked); a breaker opening
  /// triggers a dump. Optional; must outlive the engine.
  obs::FlightRecorder* flight = nullptr;
};

/// Outcome of a single-target submission.
enum class SubmitResult : std::uint8_t {
  kAccepted,  ///< staged; the pump will launch it as the budget allows
  kBlackout,  ///< inside its rescan blackout; skipped (counted)
  kQueueFull, ///< staging lane at capacity; backpressure (counted, the
              ///< target is NOT blackout-marked and may be resubmitted)
};

class ScanEngine {
 public:
  /// Pull source for bulk feeds: return up to `max_n` fresh targets; an
  /// empty result marks the source as drained and unregisters it. Called
  /// repeatedly as staging room frees up; the source must advance its own
  /// cursor between calls.
  using SourceFn =
      std::function<std::vector<net::Ipv6Address>(std::size_t max_n)>;
  /// Invoked (if set) every time a submission is refused with kQueueFull.
  using BackpressureFn = std::function<void(Dataset)>;

  /// Throws std::invalid_argument on inverted protocol-delay ranges,
  /// non-positive max_pps (private budget), non-positive budget_weight,
  /// or a zero max_pending.
  ScanEngine(simnet::Network& network, ResultStore& results,
             ScanEngineConfig config);
  ~ScanEngine();

  ScanEngine(const ScanEngine&) = delete;
  ScanEngine& operator=(const ScanEngine&) = delete;

  /// Queue a target for a full multi-protocol scan. Returns false when the
  /// target was not accepted (blackout or backpressure); use try_submit()
  /// to distinguish.
  bool submit(const net::Ipv6Address& target) {
    return try_submit(target) == SubmitResult::kAccepted;
  }
  SubmitResult try_submit(const net::Ipv6Address& target) {
    return try_submit(target, config_.dataset);
  }
  /// Submit into a specific dataset lane (results are tagged with `lane`).
  SubmitResult try_submit(const net::Ipv6Address& target, Dataset lane);

  /// Queue many targets (hitlist sweep). The vector is copied into an
  /// internal pull source and fed to the pump chunk-by-chunk, so staging
  /// stays bounded no matter how large the sweep is.
  void submit_bulk(const std::vector<net::Ipv6Address>& targets);

  /// Register a pull source the pump drains as staging room frees up.
  void add_source(SourceFn fn) { add_source(std::move(fn), config_.dataset); }
  void add_source(SourceFn fn, Dataset lane);
  /// Sources registered and not yet drained.
  std::size_t sources_pending() const { return sources_.size(); }

  void set_backpressure_callback(BackpressureFn fn) {
    on_backpressure_ = std::move(fn);
  }

  std::uint64_t submitted() const { return submitted_.value(); }
  std::uint64_t skipped_blackout() const { return skipped_blackout_.value(); }
  std::uint64_t backpressure_events() const {
    return backpressure_.value();
  }
  std::uint64_t probes_launched() const { return probes_launched_.value(); }
  std::uint64_t probes_completed() const { return probes_completed_.value(); }
  std::uint64_t probes_launched(Protocol proto) const {
    return launched_by_proto_[static_cast<std::size_t>(proto)].value();
  }
  std::uint64_t probes_completed(Protocol proto) const {
    return completed_by_proto_[static_cast<std::size_t>(proto)].value();
  }
  /// Timed-out probes re-staged for another attempt.
  std::uint64_t retries_staged() const { return retries_.value(); }
  /// Retry attempts (attempt > 0) that completed with kSuccess.
  std::uint64_t retry_successes() const { return retry_success_.value(); }
  /// Retries abandoned because the staging lane was full at re-stage time.
  std::uint64_t retries_dropped() const { return retry_dropped_.value(); }
  /// Probes shed at admission by an open breaker (recorded as timeouts).
  std::uint64_t breaker_shed() const {
    return breaker_ ? breaker_->sheds() : 0;
  }
  /// Due intents quarantined because their target's route was withdrawn.
  /// No token is spent and no record is synthesized — the intent merely
  /// parks until the route returns, so the probe-record conservation law
  /// gains the invariant
  ///   route_deferred == route_requeued + quarantine_depth.
  std::uint64_t route_deferred() const { return route_deferred_.value(); }
  /// Quarantined intents re-staged through the PendingQueue after their
  /// route was re-announced.
  std::uint64_t route_requeued() const { return route_requeued_.value(); }
  /// Intents parked in the route quarantine right now.
  std::size_t quarantine_depth() const { return quarantine_.size(); }
  /// The per-prefix breaker set (nullptr when breaking is disabled).
  const CircuitBreakerSet* breaker() const {
    return breaker_ ? &*breaker_ : nullptr;
  }
  /// Pump wake-ups (coalesced timer firings). A saturated sweep launches
  /// ~(kPumpSlackSlots + 1) probes per wake, so this stays well under
  /// probes_launched() — the event-count cut the coalesced slot buys.
  std::uint64_t pump_wakes() const { return pump_wakes_.value(); }
  /// Pump wakes that skipped source refill because the budget had no token
  /// accrued — bulk staging work deferred to a wake that can launch.
  std::uint64_t refills_deferred() const { return refill_deferred_.value(); }

  /// The budget this engine draws tokens from (shared or private).
  const SharedBudget& budget() const { return *budget_; }
  SharedBudget& budget() { return *budget_; }
  SharedBudget::ClientId budget_client() const { return budget_id_; }

  /// Virtual-time wait the token bucket imposed on each granted slot (us):
  /// launch time minus the consumed token's accrual time. Bounded by the
  /// budget's burst bank (~kPumpSlackSlots token gaps).
  const obs::Histogram& token_wait() const { return token_wait_; }
  /// Staging delay per probe (us): launch time minus the intent's
  /// not-before time. Shows token starvation of a backlogged lane.
  const obs::Histogram& queue_delay() const { return queue_delay_; }
  /// Virtual launch-to-completion time per probe (us), all protocols.
  const obs::Histogram& probe_rtt() const { return probe_rtt_; }
  /// Staged intents right now (bounded by max_pending per lane).
  std::size_t pending_depth() const { return queue_.size(); }
  /// Lifetime high-water mark of pending_depth().
  std::size_t pending_peak() const { return queue_.peak(); }

  const ScanEngineConfig& config() const { return config_; }

  /// Raw retry/jitter stream state, for study snapshots: equal states
  /// prove two runs' stochastic scan decisions have not diverged.
  std::array<std::uint64_t, 4> rng_state() const { return rng_.state(); }

 private:
  /// Token gaps the budget may bank for a private budget — the burst a
  /// single pump wake launches at most (plus one), and therefore the bound
  /// on token_wait. Shared budgets configure their own burst.
  static constexpr std::int64_t kPumpSlackSlots = 2;

  /// Stage the first-protocol intent for an accepted target.
  void stage_target(const net::Ipv6Address& target, Dataset lane);
  /// Mint the next seed-stable TraceId for `lane` (staging order is
  /// deterministic, so same-seed runs mint identical ids; the lane tag in
  /// the top byte keeps ids engine-distinct when lanes are per-engine).
  std::uint64_t mint_trace(Dataset lane) {
    return ((static_cast<std::uint64_t>(lane) + 1) << 56) | ++next_trace_;
  }
  /// Attach trace context to a freshly built intent: mint its TraceId and
  /// open the lifecycle ("target/<proto>") and staging ("probe/stage")
  /// spans. No-op without a tracer.
  void begin_intent_trace(ScanIntent& intent);
  /// Close the staging span with the instant that ends it (grant or shed).
  void end_stage_span(const ScanIntent& intent, obs::Tracer::NameId how);
  /// Stage the next protocol of `intent`'s chain after a launch at `slot`.
  void stage_successor(const ScanIntent& intent, simnet::SimTime slot);
  void launch(const ScanIntent& intent, simnet::SimTime at);
  /// Drop an intent refused by its prefix breaker: synthesize the timeout
  /// record (conserving the one-outcome-per-probe tally) and keep the
  /// protocol chain going so later probes can close the breaker again.
  void shed_probe(const ScanIntent& intent, simnet::SimTime now);
  /// Re-stage quarantined intents whose routes have been re-announced
  /// (runs at route-announce commits and at every pump wake, so lane-full
  /// parks cannot strand).
  void drain_quarantine(simnet::SimTime now);
  /// Probe completion: breaker feedback, retry re-staging, result tally.
  void finish_probe(const ScanIntent& intent, ScanRecord record);
  void refill_from_sources();
  void arm_pump();
  void pump();
  std::optional<simnet::SimTime> next_wake() const;
  void enroll_metrics();

  simnet::Network& network_;
  ResultStore& results_;
  ScanEngineConfig config_;
  util::Rng rng_;
  /// Resolved per-protocol retry policies (config.retry plus overrides).
  std::array<RetryPolicy, kProtocolCount> retry_{};
  std::optional<CircuitBreakerSet> breaker_;
  std::vector<std::unique_ptr<ProtocolScanner>> scanners_;
  /// Scanner lookup by protocol, built at construction (no per-probe scan).
  std::array<ProtocolScanner*, kProtocolCount> by_proto_{};

  std::unordered_map<net::Ipv6Address, simnet::SimTime, net::Ipv6AddressHash>
      last_scan_;
  PendingQueue queue_;
  /// Intents pulled due while their target sat in withdrawn space: parked
  /// FIFO here (no token, no record) until re-announcement re-stages them.
  std::vector<ScanIntent> quarantine_;
  struct Source {
    SourceFn fn;
    Dataset lane;
  };
  std::vector<Source> sources_;
  BackpressureFn on_backpressure_;
  /// Engines without a shared budget own a single-client one.
  std::unique_ptr<SharedBudget> own_budget_;
  SharedBudget* budget_ = nullptr;
  SharedBudget::ClientId budget_id_ = 0;
  /// The coalesced wake slot: every pump wake re-arms this one timer.
  simnet::Timer pump_timer_;
  std::uint64_t next_ephemeral_ = 40000;

  obs::Counter submitted_;
  obs::Counter skipped_blackout_;
  obs::Counter backpressure_;
  obs::Counter no_scanner_;
  obs::Counter probes_launched_;
  obs::Counter probes_completed_;
  obs::Counter pump_wakes_;
  obs::Counter refill_deferred_;
  obs::Counter retries_;
  obs::Counter retry_success_;
  obs::Counter retry_dropped_;
  obs::Counter route_deferred_;
  obs::Counter route_requeued_;
  std::array<obs::Counter, kProtocolCount> launched_by_proto_;
  std::array<obs::Counter, kProtocolCount> completed_by_proto_;
  obs::Histogram retry_delay_{obs::Histogram::exponential(1000, 4.0, 14)};
  obs::Histogram token_wait_{obs::Histogram::exponential(1000, 4.0, 14)};
  obs::Histogram queue_delay_{obs::Histogram::exponential(1000, 4.0, 14)};
  obs::Histogram probe_rtt_{obs::Histogram::exponential(1000, 4.0, 14)};
  obs::Gauge pending_gauge_;
  obs::Gauge pending_peak_gauge_;
  // Pre-interned "probe/<proto>" span names: each launch passes a 32-bit
  // id to the tracer, no string work at all.
  std::array<obs::Tracer::NameId, kProtocolCount> span_ids_{};
  // Causal-trace vocabulary, also pre-interned: per-proto lifecycle span
  // ("target/<proto>", submit -> final record), the staging span and the
  // stage-transition instants.
  std::array<obs::Tracer::NameId, kProtocolCount> lifecycle_ids_{};
  obs::Tracer::NameId stage_name_ = 0;
  obs::Tracer::NameId grant_name_ = 0;
  obs::Tracer::NameId retry_name_ = 0;
  obs::Tracer::NameId shed_name_ = 0;
  obs::Tracer::NameId record_name_ = 0;
  obs::Tracer::NameId quarantine_name_ = 0;
  /// Per-lane monotone trace counter (see mint_trace).
  std::uint64_t next_trace_ = 0;
};

/// Factories for the built-in protocol scanners (one per Table 2 protocol).
std::unique_ptr<ProtocolScanner> make_http_scanner(bool tls, std::string sni);
std::unique_ptr<ProtocolScanner> make_ssh_scanner();
std::unique_ptr<ProtocolScanner> make_mqtt_scanner(bool tls, std::string sni);
std::unique_ptr<ProtocolScanner> make_amqp_scanner(bool tls, std::string sni);
std::unique_ptr<ProtocolScanner> make_coap_scanner();

}  // namespace tts::scan
