// Little-endian binary serialization for study snapshots.
//
// ByteWriter appends fixed-width integers, strings and blobs to a byte
// buffer; ByteReader consumes the same encoding and throws
// SerializeError on any truncation or bound violation, so corrupt or
// version-skewed snapshots fail loudly instead of reading garbage. The
// encoding is explicitly little-endian byte-by-byte (not memcpy of host
// integers), so snapshots are portable across hosts.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace tts::util {

class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what)
      : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// Length-prefixed string (u32 length + raw bytes).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n)
      throw SerializeError("snapshot truncated: need " + std::to_string(n) +
                           " bytes, have " + std::to_string(remaining()));
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace tts::util
