// CoAP resource grouping (Section 4.3.3, Table 3's CoAP panel): classify
// the advertised /.well-known/core resources into the paper's groups.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "scan/results.hpp"

namespace tts::analysis {

/// Group label for a resource set: "castdevice", "qlink", "efento",
/// "nanoleaf", "empty", or "other".
std::string coap_resource_group(const std::vector<std::string>& resources);

/// group -> unique-address count for a dataset (by /N network when
/// `prefix_len` < 128; 128 = by address). Ordered so direct iteration
/// renders deterministically.
std::map<std::string, std::uint64_t> coap_group_counts(
    const scan::ResultStore& results, scan::Dataset dataset,
    unsigned prefix_len = 128);

}  // namespace tts::analysis
