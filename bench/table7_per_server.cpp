// Table 7: distinct addresses collected per NTP server location — the
// orders-of-magnitude spread between India and the Netherlands.
#include <algorithm>

#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();
  auto per_server = study.per_server_counts();
  std::sort(per_server.begin(), per_server.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  // Paper Table 7 (addresses per server).
  const std::vector<std::pair<std::string, const char*>> paper = {
      {"IN", "2 569 110 445"}, {"BR", "224 407 144"}, {"JP", "68 729 590"},
      {"ZA", "36 634 220"},    {"ES", "32 921 871"},  {"GB", "31 334 399"},
      {"DE", "25 694 654"},    {"US", "24 316 424"},  {"PL", "19 103 584"},
      {"AU", "10 120 272"},    {"NL", "9 093 946"},
  };

  util::TextTable t("Table 7: collected addresses per server location");
  t.set_header({"Location", "#Addresses (measured)", "#Addresses (paper)"});
  for (const auto& [country, count] : per_server) {
    const char* ref = "-";
    for (const auto& [code, value] : paper)
      if (code == country) ref = value;
    t.add_row({country, util::grouped(count), ref});
  }
  bench::print_scale_note(t);
  t.render(std::cout);

  // Shape checks: India leads; the max/min spread is large (paper: 282x).
  bool india_first = per_server.front().first == "IN";
  double spread = static_cast<double>(per_server.front().second) /
                  static_cast<double>(
                      std::max<std::uint64_t>(per_server.back().second, 1));
  std::cout << "\nShape check: India collects the most: "
            << (india_first ? "PASS" : "FAIL")
            << "; max/min spread " << util::fixed(spread, 1)
            << "x (paper: 282x): " << (spread > 20 ? "PASS" : "FAIL")
            << "\n";
  return (india_first && spread > 20) ? 0 : 1;
}
