#include <gtest/gtest.h>

#include "ntp/ntp_packet.hpp"
#include "util/rng.hpp"

namespace tts::ntp {
namespace {

TEST(NtpTimestamp, SimTimeConversionRoundTrips) {
  for (simnet::SimTime t : {simnet::SimTime{0}, simnet::sec(1),
                            simnet::days(28), simnet::usec(123457),
                            simnet::hours(7) + simnet::usec(999999)}) {
    NtpTimestamp ts = to_ntp_time(t);
    simnet::SimTime back = from_ntp_time(ts);
    // The 32-bit fraction quantises to ~0.23 us.
    EXPECT_NEAR(static_cast<double>(back), static_cast<double>(t), 1.0)
        << "t=" << t;
  }
}

TEST(NtpTimestamp, EpochMapping) {
  // SimTime 0 is 2024-07-20 00:00:00 UTC = Unix 1721433600.
  NtpTimestamp ts = to_ntp_time(0);
  EXPECT_EQ(ts.seconds,
            static_cast<std::uint32_t>(1721433600ULL + kNtpUnixOffset));
  EXPECT_EQ(ts.fraction, 0u);
}

TEST(NtpTimestamp, U64Packing) {
  NtpTimestamp ts{0x12345678, 0x9abcdef0};
  EXPECT_EQ(ts.to_u64(), 0x123456789abcdef0ULL);
  EXPECT_EQ(NtpTimestamp::from_u64(ts.to_u64()), ts);
}

TEST(NtpPacket, WireSizeIs48) {
  EXPECT_EQ(NtpPacket::client_request(0).serialize().size(),
            NtpPacket::kWireSize);
}

TEST(NtpPacket, SerializeParseRoundTrip) {
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    NtpPacket p;
    p.leap = static_cast<LeapIndicator>(rng.below(4));
    p.version = 1 + static_cast<std::uint8_t>(rng.below(7));
    p.mode = static_cast<NtpMode>(rng.below(8));
    p.stratum = static_cast<std::uint8_t>(rng.below(16));
    p.poll = static_cast<std::int8_t>(rng.range(-6, 17));
    p.precision = static_cast<std::int8_t>(rng.range(-30, 0));
    p.root_delay = static_cast<std::uint32_t>(rng.next());
    p.root_dispersion = static_cast<std::uint32_t>(rng.next());
    p.reference_id = static_cast<std::uint32_t>(rng.next());
    p.reference_time = NtpTimestamp::from_u64(rng.next());
    p.origin_time = NtpTimestamp::from_u64(rng.next());
    p.receive_time = NtpTimestamp::from_u64(rng.next());
    p.transmit_time = NtpTimestamp::from_u64(rng.next());

    auto parsed = NtpPacket::parse(p.serialize());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->leap, p.leap);
    EXPECT_EQ(parsed->version, p.version);
    EXPECT_EQ(parsed->mode, p.mode);
    EXPECT_EQ(parsed->stratum, p.stratum);
    EXPECT_EQ(parsed->poll, p.poll);
    EXPECT_EQ(parsed->precision, p.precision);
    EXPECT_EQ(parsed->root_delay, p.root_delay);
    EXPECT_EQ(parsed->root_dispersion, p.root_dispersion);
    EXPECT_EQ(parsed->reference_id, p.reference_id);
    EXPECT_EQ(parsed->origin_time, p.origin_time);
    EXPECT_EQ(parsed->receive_time, p.receive_time);
    EXPECT_EQ(parsed->transmit_time, p.transmit_time);
  }
}

TEST(NtpPacket, ParseRejectsShortAndVersionZero) {
  std::vector<std::uint8_t> short_wire(47, 0);
  EXPECT_FALSE(NtpPacket::parse(short_wire));
  std::vector<std::uint8_t> v0(48, 0);  // version bits 000
  EXPECT_FALSE(NtpPacket::parse(v0));
}

TEST(NtpPacket, ParseToleratesTrailingExtensions) {
  auto wire = NtpPacket::client_request(simnet::sec(5)).serialize();
  wire.resize(wire.size() + 20, 0xee);  // extension field junk
  auto parsed = NtpPacket::parse(wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->mode, NtpMode::kClient);
}

TEST(NtpPacket, ServerResponseEchoesOriginAndValidates) {
  auto request = NtpPacket::client_request(simnet::sec(100));
  auto response = NtpPacket::server_response(request, simnet::sec(100) + 30000,
                                             simnet::sec(100) + 30050, 2,
                                             0x7f000001);
  EXPECT_EQ(response.mode, NtpMode::kServer);
  EXPECT_EQ(response.origin_time, request.transmit_time);
  EXPECT_TRUE(response.valid_response_to(request));

  // Tampered origin fails the sanity test (anti-spoofing).
  auto spoofed = response;
  spoofed.origin_time.fraction ^= 1;
  EXPECT_FALSE(spoofed.valid_response_to(request));

  // Kiss-o'-death (stratum 0) is not a valid response.
  auto kod = response;
  kod.stratum = 0;
  EXPECT_FALSE(kod.valid_response_to(request));

  // A client-mode packet is not a response.
  EXPECT_FALSE(request.valid_response_to(request));
}

TEST(NtpPacket, ClientRequestShape) {
  auto request = NtpPacket::client_request(simnet::minutes(90));
  EXPECT_EQ(request.mode, NtpMode::kClient);
  EXPECT_EQ(request.leap, LeapIndicator::kUnsynchronized);
  EXPECT_EQ(request.version, 4);
  EXPECT_FALSE(request.transmit_time.is_zero());
  EXPECT_TRUE(request.origin_time.is_zero());
}

}  // namespace
}  // namespace tts::ntp
