// Multi-signal host fingerprinting — the tighter-bounds estimator the
// paper's Discussion leaves as future work ("a more comprehensive
// fingerprinting method, e.g., based on more application-level data...").
//
// The paper bounds unique hosts from below with TLS certificates / SSH
// host keys (hard but loose under key reuse) and from above with raw
// addresses (inflated by dynamic readdressing). This estimator fuses the
// available identity signals per responsive endpoint:
//   - certificate / host-key fingerprints, downgraded to a *weak* signal
//     when the key provably spans more than two ASes (fleet-shared keys
//     must not collapse a whole vendor fleet into one host);
//   - EUI-64-embedded MACs with the unique bit set (globally unique,
//     survives prefix churn);
//   - the address itself.
// Signals are merged with a union-find; weak keys only merge endpoints
// inside one /48 (one site), strong signals merge globally.
#pragma once

#include <cstdint>

#include "inet/as_registry.hpp"
#include "scan/results.hpp"

namespace tts::analysis {

struct HostBounds {
  /// Distinct responsive addresses — the naive upper bound.
  std::uint64_t upper = 0;
  /// Components when every shared key merges globally (the paper's
  /// cert/key dedup) — the hard lower bound.
  std::uint64_t lower = 0;
  /// Signal-aware estimate: strong signals merge globally, reused keys
  /// only within a /48. Lies between the bounds by construction.
  std::uint64_t estimate = 0;
};

/// Estimate unique HTTP(S)+SSH hosts behind a dataset's successful scans.
HostBounds estimate_hosts(const scan::ResultStore& results,
                          scan::Dataset dataset,
                          const inet::AsRegistry& registry);

}  // namespace tts::analysis
