// Figure 2: share of outdated SSH servers (Debian-derived patch levels),
// NTP-sourced vs hitlist — NTP-sourcing unveils more outdated hosts.
#include "analysis/ssh_analysis.hpp"
#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();

  auto ntp_hosts =
      analysis::dedup_ssh_hosts(study.results(), scan::Dataset::kNtp);
  auto hit_hosts =
      analysis::dedup_ssh_hosts(study.results(), scan::Dataset::kHitlist);

  util::TextTable t("Figure 2: outdated SSH servers by unique host key");
  t.set_header({"Dataset", "assessable keys", "outdated", "share"});
  auto row = [&](const char* label,
                 const std::vector<analysis::SshHost>& hosts) {
    auto stats = analysis::outdatedness(hosts);
    t.add_row({label, util::grouped(stats.assessable_hosts),
               util::grouped(stats.outdated),
               util::percent(stats.outdated_share())});
    return stats;
  };
  auto ntp_stats = row("Our Data", ntp_hosts);
  auto hit_stats = row("TUM IPv6 Hitlist", hit_hosts);

  // Per-OS breakdown.
  t.add_rule();
  for (const std::string os : {"Ubuntu", "Debian", "Raspbian"}) {
    auto filter = [&](const std::vector<analysis::SshHost>& hosts) {
      std::vector<analysis::SshHost> out;
      for (const auto& h : hosts)
        if (h.os == os) out.push_back(h);
      return analysis::outdatedness(out);
    };
    auto n = filter(ntp_hosts);
    auto h = filter(hit_hosts);
    t.add_row({os + " (NTP vs hitlist)",
               util::grouped(n.assessable_hosts) + " / " +
                   util::grouped(h.assessable_hosts),
               util::grouped(n.outdated) + " / " + util::grouped(h.outdated),
               util::percent(n.outdated_share()) + " / " +
                   util::percent(h.outdated_share())});
  }
  t.add_note("Paper: the proportion of outdated servers is far higher for "
             "NTP-sourced hosts.");
  t.render(std::cout);

  bool pass = ntp_stats.outdated_share() > hit_stats.outdated_share() &&
              ntp_stats.assessable_hosts > 50 &&
              hit_stats.assessable_hosts > 50;
  std::cout << "\nShape check (NTP hosts more outdated): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
