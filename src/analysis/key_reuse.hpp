// Certificate/key-reuse analysis (Section 6, "Certificate and Key Reuse"):
// keys presented from more than two ASes count as reused (double-homed
// hosts are excused); reports the most-used and most-widespread keys.
#pragma once

#include <cstdint>

#include "inet/as_registry.hpp"
#include "scan/results.hpp"

namespace tts::analysis {

struct KeyReuseStats {
  std::uint64_t reused_keys = 0;        // distinct keys seen in > 2 ASes
  std::uint64_t ips_on_reused_keys = 0; // addresses presenting them
  // The key presented by the most addresses:
  std::uint64_t most_used_key_ips = 0;
  std::uint64_t most_used_key_ases = 0;
  // The key spanning the most ASes:
  std::uint64_t most_widespread_key_ases = 0;
  std::uint64_t most_widespread_key_ips = 0;
};

/// Over successful status-200 HTTPS grabs of a dataset (the paper's filter).
KeyReuseStats http_key_reuse(const scan::ResultStore& results,
                             scan::Dataset dataset,
                             const inet::AsRegistry& registry);

}  // namespace tts::analysis
