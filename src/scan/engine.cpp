#include "scan/engine.hpp"

#include <cmath>

#include "util/format.hpp"

namespace tts::scan {

ScanEngine::ScanEngine(simnet::Network& network, ResultStore& results,
                       ScanEngineConfig config)
    : network_(network),
      results_(results),
      config_(std::move(config)),
      rng_(config_.seed) {
  network_.attach(config_.scanner_address);
  scanners_.push_back(make_http_scanner(false, config_.sni));
  scanners_.push_back(make_http_scanner(true, config_.sni));
  scanners_.push_back(make_ssh_scanner());
  scanners_.push_back(make_mqtt_scanner(false, config_.sni));
  scanners_.push_back(make_mqtt_scanner(true, config_.sni));
  scanners_.push_back(make_amqp_scanner(false, config_.sni));
  scanners_.push_back(make_amqp_scanner(true, config_.sni));
  scanners_.push_back(make_coap_scanner());
  for (std::size_t p = 0; p < kProtocolCount; ++p)
    span_names_[p] =
        util::cat("probe/", label(static_cast<Protocol>(p)));
  enroll_metrics();
}

ScanEngine::~ScanEngine() {
  if (config_.registry) config_.registry->drop_owner(this);
  network_.detach(config_.scanner_address);
}

void ScanEngine::enroll_metrics() {
  obs::Registry* reg = config_.registry;
  if (!reg) return;
  obs::Labels ds{{"dataset", std::string(label(config_.dataset))}};
  reg->enroll(submitted_, "scan_submitted", ds, this);
  reg->enroll(skipped_blackout_, "scan_skipped_blackout", ds, this);
  reg->enroll(probes_launched_, "scan_probes_launched", ds, this);
  reg->enroll(probes_completed_, "scan_probes_completed", ds, this);
  reg->enroll(token_wait_, "scan_token_wait_us", ds, this);
  reg->enroll(probe_rtt_, "scan_probe_rtt_us", ds, this);
  reg->enroll(pending_gauge_, "scan_pending_depth", ds, this);
  for (std::size_t p = 0; p < kProtocolCount; ++p) {
    obs::Labels labeled = ds;
    labeled.emplace_back("proto",
                         std::string(label(static_cast<Protocol>(p))));
    reg->enroll(launched_by_proto_[p], "scan_probes_launched", labeled, this);
    reg->enroll(completed_by_proto_[p], "scan_probes_completed",
                std::move(labeled), this);
  }
}

simnet::SimTime ScanEngine::allocate_slot() {
  auto gap = static_cast<simnet::SimDuration>(1e6 / config_.max_pps);
  if (gap < 1) gap = 1;
  simnet::SimTime now = network_.now();
  if (next_token_ < now) next_token_ = now;
  next_token_ += gap;
  token_wait_.record(next_token_ - now);
  return next_token_;
}

bool ScanEngine::submit(const net::Ipv6Address& target) {
  simnet::SimTime now = network_.now();
  auto it = last_scan_.find(target);
  if (it != last_scan_.end() && now - it->second < config_.rescan_blackout) {
    skipped_blackout_.inc();
    return false;
  }
  last_scan_[target] = now;
  submitted_.inc();

  // One token per protocol probe, plus the staggered inter-protocol delay
  // (Appendix A.2.1: 10 s to 10 min between protocols of one target).
  simnet::SimDuration stagger = 0;
  for (const auto& scanner : scanners_) {
    simnet::SimTime at = allocate_slot() + stagger;
    pending_.push(Pending{at, scanner->protocol(), target});
    stagger += config_.min_protocol_delay +
               static_cast<simnet::SimDuration>(rng_.below(
                   static_cast<std::uint64_t>(config_.max_protocol_delay -
                                              config_.min_protocol_delay)));
  }
  pending_gauge_.set(static_cast<std::int64_t>(pending_.size()));
  arm_pump();
  return true;
}

void ScanEngine::submit_bulk(const std::vector<net::Ipv6Address>& targets) {
  for (const auto& t : targets) submit(t);
}

void ScanEngine::arm_pump() {
  if (pump_armed_ || pending_.empty()) return;
  pump_armed_ = true;
  simnet::SimTime next = pending_.top().at;
  network_.events().schedule_at(next, [this] {
    pump_armed_ = false;
    pump();
  });
}

void ScanEngine::pump() {
  // Launch everything due within the next pump window; keeping the window
  // short bounds the number of in-flight probe closures.
  simnet::SimTime horizon = network_.now() + kPumpWindow;
  while (!pending_.empty() && pending_.top().at <= horizon) {
    Pending p = pending_.top();
    pending_.pop();
    launch(p.protocol, p.target, p.at);
  }
  pending_gauge_.set(static_cast<std::int64_t>(pending_.size()));
  arm_pump();
}

void ScanEngine::launch(Protocol proto, const net::Ipv6Address& target,
                        simnet::SimTime at) {
  ProtocolScanner* scanner = nullptr;
  for (const auto& s : scanners_)
    if (s->protocol() == proto) scanner = s.get();
  if (!scanner) return;

  probes_launched_.inc();
  launched_by_proto_[static_cast<std::size_t>(proto)].inc();
  auto src_port =
      static_cast<std::uint16_t>(1024 + (next_ephemeral_++ % 60000));

  network_.events().schedule_at(
      at, [this, scanner, proto, target, src_port] {
        ScanRecord base;
        base.dataset = config_.dataset;
        base.protocol = proto;
        base.target = target;
        base.at = network_.now();
        simnet::Endpoint src{config_.scanner_address, src_port};
        obs::Tracer::SpanId span = obs::Tracer::kNoSpan;
        if (config_.tracer)
          span = config_.tracer->open(
              span_names_[static_cast<std::size_t>(proto)]);
        scanner->probe(network_, src, std::move(base),
                       [this, proto, span](ScanRecord r) {
                         probes_completed_.inc();
                         completed_by_proto_[static_cast<std::size_t>(proto)]
                             .inc();
                         probe_rtt_.record(network_.now() - r.at);
                         if (config_.tracer) config_.tracer->close(span);
                         results_.add(std::move(r));
                       });
      });
}

}  // namespace tts::scan
