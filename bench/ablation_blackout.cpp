// Ablation: the 3-day rescan blackout (Appendix A.2.1). With dynamic
// addresses feeding the scanner in real time, the blackout is what keeps
// the same (stable-address) host from being hammered daily while still
// letting churned hosts be found at their new addresses.
#include <iostream>

#include "core/study.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace tts;

int main() {
  // The engine's blackout already guards per-address; what the collector
  // adds on top is set-level dedup (an address is only ever *submitted*
  // once). Measure how much each layer suppresses.
  auto config = core::make_study_config(core::StudyScale::kTiny);
  config.enable_hitlist_scan = false;
  config.enable_telescope = false;
  config.enable_actors = false;
  core::Study study(config);
  study.run();

  std::uint64_t requests = study.collector().total_requests();
  std::uint64_t distinct = study.collector().distinct_addresses();
  std::uint64_t submitted = study.ntp_engine()->submitted();
  std::uint64_t probes = study.ntp_engine()->probes_launched();

  util::TextTable t("Ablation: measurement-load controls on the NTP feed");
  t.set_header({"stage", "count", "suppressed vs previous"});
  t.add_row({"NTP requests observed", util::grouped(requests), "-"});
  t.add_row({"distinct addresses (collector dedup)", util::grouped(distinct),
             util::percent(1.0 - static_cast<double>(distinct) /
                                     static_cast<double>(requests))});
  t.add_row({"scan submissions (3-day blackout)", util::grouped(submitted),
             util::percent(1.0 - static_cast<double>(submitted) /
                                     static_cast<double>(distinct))});
  t.add_row({"protocol probes (8 per submission)", util::grouped(probes),
             "-"});
  t.add_note("Every repeated sighting of an address inside 3 days is "
             "absorbed before any packet leaves the scanner.");
  t.render(std::cout);

  bool pass = distinct < requests && submitted <= distinct &&
              probes == submitted * 8;
  std::cout << "\nShape check (each stage only ever narrows): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
