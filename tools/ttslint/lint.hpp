// ttslint — the project's determinism linter.
//
// Token-level static analysis (no libclang) enforcing the invariants a
// same-seed bit-identical study run depends on:
//
//   unordered-iter  (D1) iteration over unordered_{map,set} whose order can
//                        escape (range-for / begin()) must be mechanically
//                        order-insensitive (a conservative commutative-body
//                        check) or annotated with a reasoned pragma
//   wall-clock      (D2) ambient time/entropy (system_clock, steady_clock,
//                        rand, random_device, time(...)...) is banned
//                        outside an explicit file allowlist
//   pointer-key     (D3) raw pointer values as associative-container keys
//                        make iteration order address-dependent
//   rng-seed        (D4) every Rng construction must trace to a seed (an
//                        argument mentioning "seed"), not a bare literal
//
// Concurrency-confinement rules (the sharded simulator's barrier protocol,
// enforced statically; ThreadSanitizer backs them dynamically in CI):
//
//   thread-confine  (C1) std:: thread primitives (thread, mutex, atomic,
//                        condition_variable, lock_guard, ...) and the
//                        thread_local keyword are banned outside the
//                        dispatcher/instrument allowlist — concurrency
//                        stays inside the EventQueue worker pool
//   barrier-only    (C2) a function declared under a
//                        `// ttslint: barrier_only` marker is a
//                        side-effectful commit API: every call must be
//                        lexically inside a run_at_barrier(...) callback
//                        or carry a reasoned allow(barrier-only) pragma
//   shared-state    (C3) non-const namespace-scope variables and non-const
//                        function-local statics are cross-shard races and
//                        determinism hazards — banned outside the allowlist
//   scoped-lock     (C4) manual .lock()/.unlock() on a mutex-typed receiver
//                        (per the type environment, so weak_ptr::lock() is
//                        never a finding) must become lock_guard/scoped_lock
//
// Suppression pragma grammar (reason is mandatory):
//   // ttslint: allow(rule[, rule...]) reason=<free text>
// On a line of its own the pragma covers the next code line; trailing a
// statement it covers that line. Malformed or unused pragmas are findings
// themselves (bad-pragma / unused-pragma), so every suppression in the tree
// stays accurate and reasoned. The declaration-site marker
//   // ttslint: barrier_only
// covers the declaration on its own line or the next code line; a marker
// that precedes no function declaration is itself a bad-pragma finding.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "token.hpp"

namespace ttslint {

struct Finding {
  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// Path suffixes exempt from the wall-clock rule (the observational
  /// wall-profiling reads, e.g. "obs/trace.cpp").
  std::vector<std::string> wallclock_allow;
  /// Path suffixes exempt from thread-confine and shared-state: the files
  /// that *implement* the confinement (the sharded dispatcher) and the
  /// lock-free instruments it feeds (e.g. "simnet/event_queue.cpp",
  /// "obs/metrics.hpp"). Everything else must route concurrency through
  /// them or carry a per-site reasoned pragma.
  std::vector<std::string> thread_allow;
  /// Extra source texts (typically included headers resolved through a
  /// compilation database) whose declarations seed the container-type
  /// environment before the paired header and the file itself. This is
  /// how a cross-header alias ("using ScoreIndex = unordered_map<...>"
  /// in a header the TU includes) becomes visible: single-TU mode never
  /// sees it and silently misses the unordered iteration.
  std::vector<std::string> env_sources;
};

/// One compile_commands.json entry, reduced to what ttslint needs.
struct CompileCommand {
  std::string file;       // as written in the entry (may be relative)
  std::string directory;  // the entry's working directory
  /// -I / -isystem search paths, in command order (may be relative to
  /// `directory`).
  std::vector<std::string> includes;
};

/// Minimal parser for the clang/CMake compilation database format: a JSON
/// array of objects with "file", "directory" and either a "command" string
/// or an "arguments" array. Anything unrecognised is skipped; a text that
/// is not a database yields an empty vector.
std::vector<CompileCommand> parse_compile_commands(std::string_view json);

/// Local quoted includes (#include "x.hpp") of a source, in order.
std::vector<std::string> quoted_includes(std::string_view source);

/// Rule ids accepted by the allow(...) pragma.
bool known_rule(std::string_view rule);

/// Lint one file. `paired_header` (possibly empty) is the matching .hpp's
/// contents: its declarations seed the container-type environment so a .cpp
/// iterating a member declared in its own header resolves correctly. The
/// header itself is linted as its own input, not here.
std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view source,
                                 std::string_view paired_header,
                                 const Options& options);

/// Render one finding as "file:line:col: [rule] message".
std::string format_finding(const Finding& f);
/// Render one finding as a single-line JSON object.
std::string format_finding_json(const Finding& f);

}  // namespace ttslint
