// D4 fixture: every Rng construction must trace to a seed. Bare literals
// or unrelated values are hidden ambient state.
#include <cstdint>
#include <string_view>

struct StudyConfig {
  std::uint64_t seed = 20240720;
};

// The type's own declarations are not constructions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);
  Rng stream(std::string_view name) const;
  std::uint64_t next();
};

Rng make_root(const StudyConfig& cfg) {
  return Rng(cfg.seed);
}

Rng make_derived(const StudyConfig& cfg) {
  Rng root(cfg.seed);
  return root.stream("pool");
}

Rng make_reseeded(std::uint64_t run_seed) {
  Rng rng(run_seed + 1);
  return rng;
}

Rng bad_literal() {
  return Rng(42);  // FINDING(rng-seed)
}

Rng bad_variable(int trial) {
  Rng rng(static_cast<std::uint64_t>(trial));  // FINDING(rng-seed)
  return rng;
}

Rng bad_braced() {
  Rng rng{7};  // FINDING(rng-seed)
  return rng;
}
