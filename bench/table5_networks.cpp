// Table 5 (Appendix C): successful scans per protocol aggregated by
// network granularity (/32.././64), AS, and country — the gap between NTP
// and hitlist narrows as aggregation coarsens.
#include <unordered_set>

#include "analysis/network_agg.hpp"
#include "common.hpp"
#include "util/ordered.hpp"

using namespace tts;

namespace {

struct Aggregates {
  std::uint64_t addrs = 0, n32 = 0, n48 = 0, n56 = 0, n64 = 0, ases = 0,
                countries = 0;
};

Aggregates aggregate_protocol(const core::Study& study, scan::Dataset ds,
                              scan::Protocol proto) {
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> addrs;
  for (const auto* r : study.results().successes(ds, proto))
    addrs.insert(r->target);
  auto list = util::sorted_keys(addrs);
  auto agg = analysis::aggregate(list, study.registry());
  return {agg.addresses, agg.nets32, agg.nets48, agg.nets56,
          agg.nets64,    agg.ases,   agg.countries};
}

}  // namespace

int main() {
  core::Study& study = bench::shared_study();

  const std::vector<scan::Protocol> protocols = {
      scan::Protocol::kHttp, scan::Protocol::kHttps, scan::Protocol::kSsh,
      scan::Protocol::kMqtt, scan::Protocol::kMqtts, scan::Protocol::kAmqp,
      scan::Protocol::kAmqps, scan::Protocol::kCoap};

  for (auto dataset : {scan::Dataset::kNtp, scan::Dataset::kHitlist}) {
    util::TextTable t(util::cat("Table 5 (", to_string(dataset),
                                "): responsive endpoints per aggregation"));
    std::vector<std::string> header = {"Aggregation"};
    for (auto p : protocols) header.push_back(std::string(to_string(p)));
    t.set_header(header);

    std::vector<Aggregates> agg;
    for (auto p : protocols) agg.push_back(aggregate_protocol(study, dataset, p));

    auto row = [&](const char* label, auto getter) {
      std::vector<std::string> cells = {label};
      for (const auto& a : agg) cells.push_back(util::grouped(getter(a)));
      t.add_row(cells);
    };
    row("IPv6 Addrs", [](const Aggregates& a) { return a.addrs; });
    row("/32 nets", [](const Aggregates& a) { return a.n32; });
    row("/48 nets", [](const Aggregates& a) { return a.n48; });
    row("/56 nets", [](const Aggregates& a) { return a.n56; });
    row("/64 nets", [](const Aggregates& a) { return a.n64; });
    row("ASes", [](const Aggregates& a) { return a.ases; });
    row("Countries", [](const Aggregates& a) { return a.countries; });
    t.render(std::cout);
    std::cout << "\n";
  }

  // Shape check: for SSH the NTP/hitlist gap narrows when counting /56
  // networks instead of addresses (the paper: ~10x -> ~4x).
  auto ntp_ssh = aggregate_protocol(study, scan::Dataset::kNtp,
                                    scan::Protocol::kSsh);
  auto hit_ssh = aggregate_protocol(study, scan::Dataset::kHitlist,
                                    scan::Protocol::kSsh);
  double addr_gap = static_cast<double>(hit_ssh.addrs) /
                    std::max<double>(1, static_cast<double>(ntp_ssh.addrs));
  double net_gap = static_cast<double>(hit_ssh.n56) /
                   std::max<double>(1, static_cast<double>(ntp_ssh.n56));
  std::cout << "SSH gap by addresses " << util::fixed(addr_gap, 2)
            << "x vs by /56 networks " << util::fixed(net_gap, 2) << "x\n";
  bool narrows = net_gap < addr_gap;
  std::cout << "Shape check: aggregation narrows the SSH gap: "
            << (narrows ? "PASS" : "FAIL") << "\n";
  return narrows ? 0 : 1;
}
