// net::AddressStore: the compact /64-keyed seen-store behind the collector
// and hitlist dedup paths. Properties checked against a reference
// unordered_set, first-seen order, batch/loop equivalence, serialization
// round trips, and the sorted prefix traversal.
#include <gtest/gtest.h>

#include <span>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "net/address_store.hpp"
#include "net/ipv6.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace tts::net {
namespace {

Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return Ipv6Address::from_halves(hi, lo);
}

/// Deterministic stream with deliberate duplicates and /64 reuse: a small
/// prefix pool (bucket collisions) and a small IID pool (exact duplicates).
std::vector<Ipv6Address> random_stream(std::uint64_t seed, std::size_t n,
                                       std::size_t prefixes,
                                       std::size_t iids) {
  util::Rng rng(seed);
  std::vector<Ipv6Address> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(addr(0x20010db800000000ULL + rng.below(prefixes),
                       rng.below(iids)));
  return out;
}

TEST(AddressStore, MatchesReferenceSetUnderRandomInserts) {
  AddressStore store;
  std::unordered_set<Ipv6Address, Ipv6AddressHash> ref;
  std::vector<Ipv6Address> first_seen;
  for (const Ipv6Address& a : random_stream(0xadd7, 4000, 64, 200)) {
    bool fresh_ref = ref.insert(a).second;
    auto [seq, fresh] = store.insert(a);
    ASSERT_EQ(fresh, fresh_ref);
    if (fresh) {
      // Sequence numbers are dense: the n-th distinct address gets seq n.
      ASSERT_EQ(seq, first_seen.size());
      first_seen.push_back(a);
    }
    ASSERT_EQ(store.seq_of(a), seq);
  }
  EXPECT_EQ(store.size(), ref.size());
  EXPECT_GT(store.size(), 1000u);  // the pools actually produced collisions
  for (const Ipv6Address& a : first_seen) EXPECT_TRUE(store.contains(a));
  EXPECT_FALSE(store.contains(addr(0x3fff000000000000ULL, 1)));
  EXPECT_EQ(store.seq_of(addr(0x3fff000000000000ULL, 1)), AddressStore::kNoSeq);
  // snapshot() is exactly first-insertion order.
  EXPECT_EQ(store.snapshot(), first_seen);
}

TEST(AddressStore, InsertBatchEqualsInsertLoop) {
  auto stream = random_stream(0xb47c4, 3000, 16, 150);
  AddressStore loop_store;
  std::vector<Ipv6Address> loop_fresh;
  for (const Ipv6Address& a : stream)
    if (loop_store.insert(a).fresh) loop_fresh.push_back(a);

  // Feed the same stream in uneven batch sizes (including same-/64 runs —
  // random_stream's small prefix pool produces plenty).
  AddressStore batch_store;
  std::vector<Ipv6Address> batch_fresh;
  std::size_t new_total = 0, pos = 0, chunk = 1;
  while (pos < stream.size()) {
    std::size_t n = std::min(chunk, stream.size() - pos);
    new_total += batch_store.insert_batch(
        std::span<const Ipv6Address>(stream.data() + pos, n), &batch_fresh);
    pos += n;
    chunk = chunk % 97 + 1;
  }
  EXPECT_EQ(new_total, loop_fresh.size());
  EXPECT_EQ(batch_fresh, loop_fresh);
  EXPECT_EQ(batch_store.size(), loop_store.size());
  EXPECT_EQ(batch_store.prefix_count(), loop_store.prefix_count());
  EXPECT_EQ(batch_store.snapshot(), loop_store.snapshot());
  for (const Ipv6Address& a : loop_fresh)
    EXPECT_EQ(batch_store.seq_of(a), loop_store.seq_of(a));
}

TEST(AddressStore, SaveLoadRoundTripIsByteIdentical) {
  AddressStore store;
  store.insert_batch(random_stream(0x5e71a11, 2500, 48, 120));

  util::ByteWriter w;
  store.save(w);
  std::string bytes = w.take();

  util::ByteReader r(bytes);
  AddressStore loaded = AddressStore::load(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(loaded.size(), store.size());
  EXPECT_EQ(loaded.prefix_count(), store.prefix_count());
  EXPECT_EQ(loaded.snapshot(), store.snapshot());
  for (const Ipv6Address& a : store.snapshot())
    EXPECT_EQ(loaded.seq_of(a), store.seq_of(a));

  // Re-serializing the loaded store reproduces the exact bytes: the wire
  // form is a pure function of the contents (the snapshot invariant).
  util::ByteWriter w2;
  loaded.save(w2);
  EXPECT_EQ(w2.bytes(), bytes);
}

TEST(AddressStore, LoadRejectsTruncatedBytes) {
  AddressStore store;
  store.insert(addr(0x20010db800000001ULL, 42));
  util::ByteWriter w;
  store.save(w);
  std::string bytes = w.take();
  for (std::size_t cut : {std::size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    util::ByteReader r(std::string_view(bytes).substr(0, cut));
    EXPECT_THROW(AddressStore::load(r), util::SerializeError) << "cut " << cut;
  }
}

TEST(AddressStore, ForEachPrefixVisitsSortedPrefixesAndSortedIids) {
  AddressStore store;
  // Inserted in descending prefix order to prove traversal sorts by key,
  // not by creation order.
  store.insert(addr(0x30, 5));
  store.insert(addr(0x20, 9));
  store.insert(addr(0x20, 2));
  store.insert(addr(0x10, 7));
  std::vector<std::uint64_t> prefixes;
  std::size_t total = 0;
  store.for_each_prefix([&](std::uint64_t prefix,
                            std::span<const std::uint64_t> iids) {
    prefixes.push_back(prefix);
    total += iids.size();
    for (std::size_t i = 1; i < iids.size(); ++i)
      EXPECT_LT(iids[i - 1], iids[i]);
  });
  EXPECT_EQ(prefixes, (std::vector<std::uint64_t>{0x10, 0x20, 0x30}));
  EXPECT_EQ(total, store.size());
  EXPECT_EQ(store.prefix_count(), 3u);
}

TEST(AddressStore, MemoryFootprintBeatsNodeBasedSetOnClusteredSpace) {
  // The compact layout pays 16 bytes per address steady state with tight
  // (9/8) capacity growth, so bound well under the ~32-byte floor of a
  // node-based set. (The >= 4x win over the legacy unordered_set + order
  // vector is measured by the collection bench, which builds the legacy
  // structures for comparison.)
  AddressStore store;
  store.insert_batch(random_stream(0x3a11, 30000, 64, 1 << 30));
  ASSERT_GT(store.size(), 25000u);
  double per_addr = static_cast<double>(store.memory_bytes()) /
                    static_cast<double>(store.size());
  EXPECT_GT(per_addr, 0.0);
  EXPECT_LT(per_addr, 20.0);
  EXPECT_EQ(AddressStore().memory_bytes(), sizeof(AddressStore));
}

}  // namespace
}  // namespace tts::net
