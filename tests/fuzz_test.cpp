// Deterministic fuzz tests: every wire parser in the repo must be total —
// arbitrary bytes either parse into a coherent value or are rejected;
// nothing crashes, loops, or reads out of bounds. Two generators: pure
// random buffers, and single/multi-byte mutations of valid messages (the
// nastier case: almost-valid input).
#include <gtest/gtest.h>

#include "net/address_io.hpp"
#include "net/ipv6.hpp"
#include "net/mac.hpp"
#include "ntp/ntp_packet.hpp"
#include "proto/amqp.hpp"
#include "proto/coap.hpp"
#include "proto/http.hpp"
#include "proto/mqtt.hpp"
#include "proto/sshwire.hpp"
#include "proto/tlslite.hpp"
#include "util/rng.hpp"

#include <sstream>

namespace tts {
namespace {

std::vector<std::uint8_t> random_buffer(util::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

template <typename Parser>
void fuzz_random(Parser parse, int iterations = 3000,
                 std::size_t max_len = 96) {
  util::Rng rng(0xF022);
  for (int i = 0; i < iterations; ++i) {
    auto buffer = random_buffer(rng, max_len);
    parse(buffer);  // must not crash; result is irrelevant
  }
}

template <typename Parser>
void fuzz_mutations(const std::vector<std::uint8_t>& valid, Parser parse,
                    int iterations = 3000) {
  util::Rng rng(0xBEEF);
  for (int i = 0; i < iterations; ++i) {
    auto mutated = valid;
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips && !mutated.empty(); ++f) {
      std::size_t pos = rng.below(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    // Occasionally truncate or extend.
    if (rng.chance(0.3) && !mutated.empty())
      mutated.resize(rng.below(mutated.size()) + 0);
    if (rng.chance(0.2)) mutated.push_back(static_cast<std::uint8_t>(rng.next()));
    parse(mutated);
  }
}

TEST(Fuzz, NtpPacketParser) {
  auto parse = [](const std::vector<std::uint8_t>& b) {
    auto p = ntp::NtpPacket::parse(b);
    if (p) {
      // Parsed packets must re-serialise without throwing.
      auto wire = p->serialize();
      EXPECT_EQ(wire.size(), ntp::NtpPacket::kWireSize);
    }
  };
  fuzz_random(parse);
  fuzz_mutations(ntp::NtpPacket::client_request(simnet::sec(7)).serialize(),
                 parse);
}

TEST(Fuzz, TlsDecoder) {
  auto parse = [](const std::vector<std::uint8_t>& b) {
    (void)proto::decode(b);
  };
  fuzz_random(parse);
  proto::ClientHello hello;
  hello.sni = "example.org";
  fuzz_mutations(proto::encode(hello), parse);
  proto::ServerHello server;
  server.cert.subject = "CN=fuzz";
  fuzz_mutations(proto::encode(server), parse);
}

TEST(Fuzz, MqttParsers) {
  auto parse = [](const std::vector<std::uint8_t>& b) {
    (void)proto::MqttConnect::parse(b);
    (void)proto::MqttConnack::parse(b);
    (void)proto::mqtt_read_varint(b);
  };
  fuzz_random(parse);
  proto::MqttConnect connect;
  connect.username = "u";
  connect.password = "p";
  fuzz_mutations(connect.serialize(), parse);
}

TEST(Fuzz, AmqpParser) {
  auto parse = [](const std::vector<std::uint8_t>& b) {
    (void)proto::AmqpFrame::parse(b);
    (void)proto::is_amqp_protocol_header(b);
  };
  fuzz_random(parse);
  proto::AmqpFrame frame;
  frame.method = proto::AmqpMethod::kClose;
  frame.close_code = 403;
  frame.text = "ACCESS_REFUSED";
  fuzz_mutations(frame.serialize(), parse);
}

TEST(Fuzz, CoapParser) {
  auto parse = [](const std::vector<std::uint8_t>& b) {
    auto m = proto::CoapMessage::parse(b);
    if (m) {
      // Round-trip of accepted messages must stay parseable.
      EXPECT_TRUE(proto::CoapMessage::parse(m->serialize()));
    }
  };
  fuzz_random(parse);
  fuzz_mutations(proto::CoapMessage::well_known_core(1, 2).serialize(),
                 parse);
}

TEST(Fuzz, HttpParsers) {
  auto parse = [](const std::vector<std::uint8_t>& b) {
    (void)proto::HttpRequest::parse(b);
    (void)proto::HttpResponse::parse(b);
  };
  fuzz_random(parse, 1500, 160);
  fuzz_mutations(proto::HttpRequest{}.serialize(), parse, 1500);
  proto::HttpResponse resp;
  resp.body = proto::html_page("fuzz");
  fuzz_mutations(resp.serialize(), parse, 1500);
}

TEST(Fuzz, SshParsers) {
  auto parse = [](const std::vector<std::uint8_t>& b) {
    (void)proto::parse_ssh_id(b);
    (void)proto::parse_ssh_kex_reply(b);
  };
  fuzz_random(parse);
  fuzz_mutations(proto::ssh_id_string("SSH-2.0-OpenSSH_9.2p1 Debian-2"),
                 parse);
  fuzz_mutations(proto::ssh_kex_reply(0x42), parse);
}

TEST(Fuzz, Ipv6TextParser) {
  util::Rng rng(77);
  const char alphabet[] = "0123456789abcdefABCDEF:./ %-xg";
  for (int i = 0; i < 20000; ++i) {
    std::string s;
    std::size_t len = rng.below(48);
    for (std::size_t c = 0; c < len; ++c)
      s.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
    auto addr = net::Ipv6Address::parse(s);
    if (addr) {
      // Anything accepted must round-trip through canonical form.
      auto again = net::Ipv6Address::parse(addr->to_string());
      ASSERT_TRUE(again) << s;
      EXPECT_EQ(*again, *addr) << s;
    }
    (void)net::Ipv6Prefix::parse(s);
    (void)net::MacAddress::parse(s);
  }
}

TEST(Fuzz, AddressListReader) {
  util::Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    std::ostringstream text;
    int lines = static_cast<int>(rng.below(20));
    for (int l = 0; l < lines; ++l) {
      switch (rng.below(4)) {
        case 0: text << "# comment\n"; break;
        case 1: text << "2001:db8::" << rng.below(0xffff) << "\n"; break;
        case 2: text << "garbage line\n"; break;
        default: text << "   \n"; break;
      }
    }
    std::istringstream in(text.str());
    net::AddressReadStats stats;
    auto addrs = net::read_address_list(in, &stats);
    EXPECT_EQ(addrs.size(), stats.parsed);
  }
}

}  // namespace
}  // namespace tts
