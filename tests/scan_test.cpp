// Scan engine mechanics: outcomes, rate limiting, blackout, staggering.
#include <gtest/gtest.h>

#include "inet/services.hpp"
#include "proto/amqp.hpp"
#include "proto/http.hpp"
#include "proto/mqtt.hpp"
#include "proto/tlslite.hpp"
#include "proto/ports.hpp"
#include "scan/engine.hpp"

namespace tts::scan {
namespace {

net::Ipv6Address addr(std::uint64_t lo) {
  return net::Ipv6Address::from_halves(0x2400002000000000ULL, lo);
}

class ScanTest : public ::testing::Test {
 protected:
  ScanTest() : network_(events_) {}

  ScanEngineConfig fast_config() {
    ScanEngineConfig c;
    c.scanner_address = addr(0xdead);
    c.min_protocol_delay = simnet::usec(10);
    c.max_protocol_delay = simnet::usec(20);
    c.max_pps = 100000;
    return c;
  }

  /// A plain-HTTP one-page server on (target, 80).
  void serve_http(const net::Ipv6Address& target, const std::string& title) {
    network_.attach(target);
    network_.listen_tcp(
        {target, proto::kHttpPort}, [title](simnet::TcpConnectionPtr conn) {
          conn->set_on_data(
              simnet::TcpConnection::Side::kServer,
              [conn, title](std::vector<std::uint8_t>) {
                proto::HttpResponse resp;
                resp.status = 200;
                resp.server = "test";
                resp.body = proto::html_page(title);
                conn->send(simnet::TcpConnection::Side::kServer,
                           resp.serialize());
                conn->close(simnet::TcpConnection::Side::kServer);
              });
        });
  }

  simnet::EventQueue events_;
  simnet::Network network_;
  ResultStore results_;
};

TEST_F(ScanTest, OutcomesPerTargetState) {
  serve_http(addr(1), "Live");
  network_.attach(addr(2));  // online, no services -> refused
  // addr(3) offline -> timeout

  ScanEngine engine(network_, results_, fast_config());
  engine.submit(addr(1));
  engine.submit(addr(2));
  engine.submit(addr(3));
  events_.run();

  EXPECT_EQ(results_.count(Dataset::kNtp, Protocol::kHttp,
                           Outcome::kSuccess),
            1u);
  EXPECT_EQ(results_.count(Dataset::kNtp, Protocol::kHttp,
                           Outcome::kRefused),
            1u);
  EXPECT_EQ(results_.count(Dataset::kNtp, Protocol::kHttp,
                           Outcome::kTimeout),
            1u);
  // The live host has no SSH listener -> refused there.
  EXPECT_EQ(results_.count(Dataset::kNtp, Protocol::kSsh,
                           Outcome::kRefused),
            2u);
  // CoAP over UDP to hosts without listeners: silence -> timeouts.
  EXPECT_EQ(results_.count(Dataset::kNtp, Protocol::kCoap,
                           Outcome::kTimeout),
            3u);
  // Every probe produced exactly one record.
  EXPECT_EQ(engine.probes_launched(), 3 * kProtocolCount);
  EXPECT_EQ(engine.probes_completed(), 3 * kProtocolCount);
}

TEST_F(ScanTest, SuccessRecordsCarryPayloads) {
  serve_http(addr(1), "My Page");
  ScanEngine engine(network_, results_, fast_config());
  engine.submit(addr(1));
  events_.run();
  auto hits = results_.successes(Dataset::kNtp, Protocol::kHttp);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->http_title, "My Page");
  EXPECT_TRUE(hits[0]->http_has_title);
  EXPECT_EQ(hits[0]->http_server, "test");
  EXPECT_EQ(hits[0]->http_status, 200);
}

TEST_F(ScanTest, BlackoutSuppressesRescans) {
  auto config = fast_config();
  config.rescan_blackout = simnet::days(3);
  ScanEngine engine(network_, results_, config);

  EXPECT_TRUE(engine.submit(addr(5)));
  EXPECT_FALSE(engine.submit(addr(5)));  // immediately again: skipped
  events_.run();
  EXPECT_EQ(engine.skipped_blackout(), 1u);

  // After the blackout expires it is scanned again.
  events_.schedule_at(simnet::days(3) + simnet::sec(1), [&] {
    EXPECT_TRUE(engine.submit(addr(5)));
  });
  events_.run();
  EXPECT_EQ(engine.submitted(), 2u);
}

TEST_F(ScanTest, RateLimiterSpacesProbes) {
  auto config = fast_config();
  config.max_pps = 10;  // 100 ms per probe
  config.min_protocol_delay = simnet::usec(0);
  config.max_protocol_delay = simnet::usec(1);
  ScanEngine engine(network_, results_, config);
  // 4 targets x 8 protocols = 32 probes at 10 pps >= 3.1 s span.
  for (std::uint64_t i = 0; i < 4; ++i) engine.submit(addr(100 + i));
  events_.run();
  EXPECT_GE(events_.now(), simnet::msec(3100));
  EXPECT_EQ(engine.probes_completed(), 32u);
}

TEST_F(ScanTest, ProtocolStaggerSpreadsOneTargetsProbes) {
  auto config = fast_config();
  config.min_protocol_delay = simnet::sec(10);
  config.max_protocol_delay = simnet::minutes(10);
  serve_http(addr(1), "x");
  ScanEngine engine(network_, results_, config);
  engine.submit(addr(1));
  events_.run();
  // The last protocol of the target must start at least
  // 7 * min_protocol_delay after the first.
  EXPECT_GE(events_.now(), 7 * simnet::sec(10));
}

TEST_F(ScanTest, TlsScannerRecordsCertificate) {
  // Serve HTTPS with a fixed certificate via a runtime-style handler.
  network_.attach(addr(9));
  network_.listen_tcp({addr(9), proto::kHttpsPort},
                      [](simnet::TcpConnectionPtr conn) {
    conn->set_on_data(
        simnet::TcpConnection::Side::kServer,
        [conn](std::vector<std::uint8_t> data) {
          auto msg = proto::decode(data);
          if (!msg) return;
          if (msg->kind == proto::TlsMessage::Kind::kClientHello) {
            proto::ServerHello hello;
            hello.cert.fingerprint = 0x4242;
            hello.cert.subject = "CN=unit";
            conn->send(simnet::TcpConnection::Side::kServer,
                       proto::encode(hello));
            return;
          }
          if (msg->kind == proto::TlsMessage::Kind::kAppData) {
            proto::HttpResponse resp;
            resp.status = 200;
            resp.body = proto::html_page("secure");
            conn->send(simnet::TcpConnection::Side::kServer,
                       proto::encode_app_data(resp.serialize()));
            conn->close(simnet::TcpConnection::Side::kServer);
          }
        });
  });

  ScanEngine engine(network_, results_, fast_config());
  engine.submit(addr(9));
  events_.run();
  auto hits = results_.successes(Dataset::kNtp, Protocol::kHttps);
  ASSERT_EQ(hits.size(), 1u);
  ASSERT_TRUE(hits[0]->certificate);
  EXPECT_EQ(hits[0]->certificate->fingerprint, 0x4242u);
  EXPECT_EQ(hits[0]->http_title, "secure");
}

TEST_F(ScanTest, MqttsProbeCompletesTlsAndAuthCheck) {
  // Hand-built TLS MQTT broker enforcing auth.
  network_.attach(addr(11));
  network_.listen_tcp({addr(11), proto::kMqttsPort},
                      [](simnet::TcpConnectionPtr conn) {
    auto established = std::make_shared<bool>(false);
    conn->set_on_data(
        simnet::TcpConnection::Side::kServer,
        [conn, established](std::vector<std::uint8_t> data) {
          auto msg = proto::decode(data);
          if (!msg) return;
          if (msg->kind == proto::TlsMessage::Kind::kClientHello) {
            proto::ServerHello hello;
            hello.cert.fingerprint = 0xB40C;
            conn->send(simnet::TcpConnection::Side::kServer,
                       proto::encode(hello));
            *established = true;
            return;
          }
          if (msg->kind == proto::TlsMessage::Kind::kAppData &&
              *established) {
            auto connect = proto::MqttConnect::parse(msg->app_data);
            proto::MqttConnack ack;
            ack.code = (connect && connect->username.empty())
                           ? proto::MqttConnectReturn::kNotAuthorized
                           : proto::MqttConnectReturn::kAccepted;
            conn->send(simnet::TcpConnection::Side::kServer,
                       proto::encode_app_data(ack.serialize()));
            conn->close(simnet::TcpConnection::Side::kServer);
          }
        });
  });

  ScanEngine engine(network_, results_, fast_config());
  engine.submit(addr(11));
  events_.run();
  auto hits = results_.successes(Dataset::kNtp, Protocol::kMqtts);
  ASSERT_EQ(hits.size(), 1u);
  ASSERT_TRUE(hits[0]->certificate);
  EXPECT_EQ(hits[0]->certificate->fingerprint, 0xB40Cu);
  EXPECT_EQ(hits[0]->broker_auth_required, std::optional<bool>(true));
}

TEST_F(ScanTest, AmqpsProbeNegotiatesThroughTls) {
  // TLS AMQP broker that accepts guest (no access control).
  network_.attach(addr(12));
  network_.listen_tcp({addr(12), proto::kAmqpsPort},
                      [](simnet::TcpConnectionPtr conn) {
    auto established = std::make_shared<bool>(false);
    auto started = std::make_shared<bool>(false);
    conn->set_on_data(
        simnet::TcpConnection::Side::kServer,
        [conn, established, started](std::vector<std::uint8_t> data) {
          auto msg = proto::decode(data);
          if (!msg) return;
          if (msg->kind == proto::TlsMessage::Kind::kClientHello) {
            proto::ServerHello hello;
            hello.cert.fingerprint = 0xA3;
            conn->send(simnet::TcpConnection::Side::kServer,
                       proto::encode(hello));
            *established = true;
            return;
          }
          if (msg->kind != proto::TlsMessage::Kind::kAppData ||
              !*established)
            return;
          if (!*started) {
            if (!proto::is_amqp_protocol_header(msg->app_data)) return;
            *started = true;
            proto::AmqpFrame start;
            start.method = proto::AmqpMethod::kStart;
            start.text = "RabbitMQ";
            conn->send(simnet::TcpConnection::Side::kServer,
                       proto::encode_app_data(start.serialize()));
            return;
          }
          proto::AmqpFrame tune;
          tune.method = proto::AmqpMethod::kTune;
          conn->send(simnet::TcpConnection::Side::kServer,
                     proto::encode_app_data(tune.serialize()));
          conn->close(simnet::TcpConnection::Side::kServer);
        });
  });

  ScanEngine engine(network_, results_, fast_config());
  engine.submit(addr(12));
  events_.run();
  auto hits = results_.successes(Dataset::kNtp, Protocol::kAmqps);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->broker_auth_required, std::optional<bool>(false));
  ASSERT_TRUE(hits[0]->certificate);
}

TEST_F(ScanTest, MalformedServerBytesAreRecorded) {
  network_.attach(addr(7));
  network_.listen_tcp({addr(7), proto::kSshPort},
                      [](simnet::TcpConnectionPtr conn) {
                        conn->send(simnet::TcpConnection::Side::kServer,
                                   {'N', 'O', 'P', 'E', '\r', '\n'});
                      });
  ScanEngine engine(network_, results_, fast_config());
  engine.submit(addr(7));
  events_.run();
  EXPECT_EQ(results_.count(Dataset::kNtp, Protocol::kSsh,
                           Outcome::kMalformed),
            1u);
}

TEST_F(ScanTest, ResultStoreTotals) {
  serve_http(addr(1), "t");
  ScanEngine engine(network_, results_, fast_config());
  engine.submit(addr(1));
  events_.run();
  EXPECT_EQ(results_.total(Dataset::kNtp), kProtocolCount);
  EXPECT_EQ(results_.total(Dataset::kHitlist), 0u);
  EXPECT_EQ(results_.total(Dataset::kNtp, Protocol::kHttp), 1u);
}

TEST_F(ScanTest, ProtocolMetadata) {
  EXPECT_EQ(port_of(Protocol::kHttps), 443);
  EXPECT_EQ(port_of(Protocol::kCoap), 5683);
  EXPECT_TRUE(is_tls(Protocol::kMqtts));
  EXPECT_FALSE(is_tls(Protocol::kSsh));
  EXPECT_EQ(to_string(Protocol::kAmqps), "AMQPS");
  EXPECT_EQ(to_string(Dataset::kHitlist), "TUM IPv6 Hitlist");
  EXPECT_EQ(to_string(Outcome::kTlsFailed), "tls-failed");
}

}  // namespace
}  // namespace tts::scan
