// Hitlist assembly: combine the source simulators, deduplicate, and derive
// the "public" (responsive-only) variant — mirroring the TUM IPv6 Hitlist's
// full and public lists compared in Table 1.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hitlist/sources.hpp"
#include "inet/population.hpp"
#include "inet/services.hpp"

namespace tts::hitlist {

struct Hitlist {
  /// Deduplicated full list (everything the sources produced).
  std::vector<net::Ipv6Address> full;
  /// Subset verified responsive at build time (ICMP/any-probe model):
  /// live service hosts, aliased-region addresses, and router interfaces.
  std::vector<net::Ipv6Address> public_list;
  /// Provenance of each address (first source that contributed it).
  std::unordered_map<net::Ipv6Address, Source, net::Ipv6AddressHash>
      provenance;

  /// Ordered by source id so direct iteration renders deterministically.
  std::map<Source, std::uint64_t> counts_by_source() const;
};

class HitlistBuilder {
 public:
  /// Build against the population *before* the runtime starts: addresses
  /// are the devices' initial ones, so entries for churning devices rot by
  /// the time the scan runs — the dynamic-address problem of Section 6.
  ///
  /// `runtime` is optional; when provided, responsiveness is evaluated
  /// against live ownership instead of initial addresses.
  static Hitlist build(const inet::Population& pop,
                       const inet::InternetRuntime* runtime,
                       const SourceConfig& config);
};

}  // namespace tts::hitlist
