#include <gtest/gtest.h>

#include "analysis/fingerprint.hpp"
#include "net/mac.hpp"

namespace tts::analysis {
namespace {

using scan::Dataset;
using scan::Outcome;
using scan::Protocol;
using scan::ScanRecord;

class FingerprintTest : public ::testing::Test {
 protected:
  FingerprintTest() : registry_(inet::AsRegistry::generate({{}, 4})) {}

  net::Ipv6Address in_as(std::size_t as_index, std::uint64_t net,
                         std::uint64_t iid) {
    const auto& as = registry_.all().at(as_index);
    return net::Ipv6Address::from_halves(
        as.prefixes[0].address().hi64() | (net << 16), iid);
  }

  void add_ssh(const net::Ipv6Address& addr, std::uint64_t key) {
    ScanRecord r;
    r.dataset = Dataset::kNtp;
    r.protocol = Protocol::kSsh;
    r.outcome = Outcome::kSuccess;
    r.target = addr;
    r.ssh_hostkey = key;
    r.ssh_banner = "SSH-2.0-OpenSSH_9.2p1 Debian-2";
    results_.add(r);
  }

  inet::AsRegistry registry_;
  scan::ResultStore results_;
};

TEST_F(FingerprintTest, DistinctHostsStayDistinct) {
  add_ssh(in_as(0, 1, 0x100001), 1);
  add_ssh(in_as(0, 2, 0x100002), 2);
  add_ssh(in_as(0, 3, 0x100003), 3);
  auto bounds = estimate_hosts(results_, Dataset::kNtp, registry_);
  EXPECT_EQ(bounds.upper, 3u);
  EXPECT_EQ(bounds.lower, 3u);
  EXPECT_EQ(bounds.estimate, 3u);
}

TEST_F(FingerprintTest, SharedKeyInOneSiteMergesEverywhere) {
  // Same key at two addresses in one /48: one host under every policy.
  add_ssh(in_as(0, 1, 0xaaa001), 42);
  add_ssh(in_as(0, 1, 0xaaa002), 42);
  auto bounds = estimate_hosts(results_, Dataset::kNtp, registry_);
  EXPECT_EQ(bounds.upper, 2u);
  EXPECT_EQ(bounds.lower, 1u);
  EXPECT_EQ(bounds.estimate, 1u);
}

TEST_F(FingerprintTest, FleetSharedKeySplitsPerSite) {
  // One key across four ASes (firmware fleet): the lower bound collapses
  // it to one host, the signal-aware estimate keeps one per /48 site.
  for (std::size_t as = 0; as < 4; ++as)
    add_ssh(in_as(as, 1, 0xbbb000 + as), 99);
  auto bounds = estimate_hosts(results_, Dataset::kNtp, registry_);
  EXPECT_EQ(bounds.upper, 4u);
  EXPECT_EQ(bounds.lower, 1u);
  EXPECT_EQ(bounds.estimate, 4u);  // four sites, four devices
}

TEST_F(FingerprintTest, EmbeddedMacBridgesPrefixChurn) {
  // The same device (same vendor MAC -> same EUI-64 IID) seen in two /48s
  // with two different "unique" keys... keys differ so key-merge cannot
  // help; the MAC signal must merge them.
  auto mac = *net::MacAddress::parse("00:1a:4f:01:02:03");
  std::uint64_t iid = net::eui64_iid_from_mac(mac);
  add_ssh(in_as(0, 1, 0).with_iid(iid), 7);
  add_ssh(in_as(0, 9, 0).with_iid(iid), 7);
  auto bounds = estimate_hosts(results_, Dataset::kNtp, registry_);
  EXPECT_EQ(bounds.upper, 2u);
  EXPECT_EQ(bounds.estimate, 1u);
  EXPECT_EQ(bounds.lower, 1u);
}

TEST_F(FingerprintTest, LocallyAdministeredMacDoesNotMerge) {
  auto mac = *net::MacAddress::parse("02:1a:4f:01:02:03");  // local bit
  std::uint64_t iid = net::eui64_iid_from_mac(mac);
  add_ssh(in_as(0, 1, 0).with_iid(iid), 1);
  add_ssh(in_as(0, 9, 0).with_iid(iid), 2);
  auto bounds = estimate_hosts(results_, Dataset::kNtp, registry_);
  EXPECT_EQ(bounds.estimate, 2u);  // randomised MACs are not identity
}

TEST_F(FingerprintTest, BoundsAreOrdered) {
  // A mixed scenario: fleet key + churned device + singles.
  for (std::size_t as = 0; as < 3; ++as)
    add_ssh(in_as(as, 1, 0xccc000 + as), 500);
  auto mac = *net::MacAddress::parse("00:0e:58:0a:0b:0c");
  std::uint64_t iid = net::eui64_iid_from_mac(mac);
  add_ssh(in_as(1, 2, 0).with_iid(iid), 501);
  add_ssh(in_as(1, 7, 0).with_iid(iid), 502);
  add_ssh(in_as(2, 3, 0xddd001), 503);
  auto bounds = estimate_hosts(results_, Dataset::kNtp, registry_);
  EXPECT_LE(bounds.lower, bounds.estimate);
  EXPECT_LE(bounds.estimate, bounds.upper);
  EXPECT_EQ(bounds.upper, 6u);
}

TEST_F(FingerprintTest, EmptyDatasetYieldsZeros) {
  auto bounds = estimate_hosts(results_, Dataset::kHitlist, registry_);
  EXPECT_EQ(bounds.upper, 0u);
  EXPECT_EQ(bounds.lower, 0u);
  EXPECT_EQ(bounds.estimate, 0u);
}

}  // namespace
}  // namespace tts::analysis
