#include "inet/device.hpp"

#include <stdexcept>

#include "util/format.hpp"

namespace tts::inet {

std::string_view to_string(DeviceClass c) {
  switch (c) {
    case DeviceClass::kFritzBox: return "FRITZ!Box";
    case DeviceClass::kFritzRepeater: return "FRITZ!Repeater";
    case DeviceClass::kFritzPowerline: return "FRITZ!Powerline";
    case DeviceClass::kDlinkCpe: return "D-LINK CPE";
    case DeviceClass::kCiscoWap: return "Cisco WAP";
    case DeviceClass::kGenericCpe: return "generic CPE";
    case DeviceClass::kRaspbianHome: return "Raspbian host";
    case DeviceClass::kHomeLinuxServer: return "home Linux server";
    case DeviceClass::kSmartphone: return "smartphone";
    case DeviceClass::kIotGadget: return "IoT gadget";
    case DeviceClass::kCastDevice: return "cast device";
    case DeviceClass::kQlinkWifi: return "qlink Wi-Fi";
    case DeviceClass::kEfentoSensor: return "Efento sensor";
    case DeviceClass::kNanoleaf: return "Nanoleaf";
    case DeviceClass::kCoapMisc: return "CoAP misc";
    case DeviceClass::kHomeMqttBroker: return "home MQTT broker";
    case DeviceClass::kUbuntuServer: return "Ubuntu server";
    case DeviceClass::kDebianServer: return "Debian server";
    case DeviceClass::kFreebsdServer: return "FreeBSD server";
    case DeviceClass::kSshApplianceOther: return "SSH appliance";
    case DeviceClass::k3cxServer: return "3CX server";
    case DeviceClass::kParkingPage: return "parking page";
    case DeviceClass::kWebHostingServer: return "web hosting server";
    case DeviceClass::kCloudMqttBroker: return "cloud MQTT broker";
    case DeviceClass::kCloudAmqpBroker: return "cloud AMQP broker";
    case DeviceClass::kCdnLoadBalancer: return "CDN load balancer";
  }
  return "?";
}

bool in_country_group(const std::string& code, const std::string& group) {
  if (group == "EU") {
    static const char* kEu[] = {"DE", "ES", "NL", "GB", "PL", "FR", "IT",
                                "SE", "CH", "AT", "CZ", "FI"};
    for (const char* c : kEu)
      if (code == c) return true;
    return false;
  }
  return code == group;
}

double country_multiplier(const DeviceProfile& profile,
                          const std::string& country) {
  double fallback = 1.0;
  bool have_fallback = false;
  // Exact code match wins, then group matches, then "*".
  for (const auto& [key, mult] : profile.country_mult)
    if (key == country) return mult;
  for (const auto& [key, mult] : profile.country_mult) {
    if (key == "*") {
      fallback = mult;
      have_fallback = true;
      continue;
    }
    if (key != country && in_country_group(country, key)) return mult;
  }
  return have_fallback ? fallback : 1.0;
}

const std::vector<std::string>& ssh_version_lineage(const std::string& os) {
  static const std::vector<std::string> kUbuntu = {
      "OpenSSH_8.9p1 Ubuntu-3ubuntu0.1",  "OpenSSH_8.9p1 Ubuntu-3ubuntu0.3",
      "OpenSSH_8.9p1 Ubuntu-3ubuntu0.4",  "OpenSSH_8.9p1 Ubuntu-3ubuntu0.6",
      "OpenSSH_8.9p1 Ubuntu-3ubuntu0.7",  "OpenSSH_8.9p1 Ubuntu-3ubuntu0.10",
  };
  static const std::vector<std::string> kDebian = {
      "OpenSSH_9.2p1 Debian-2",
      "OpenSSH_9.2p1 Debian-2+deb12u1",
      "OpenSSH_9.2p1 Debian-2+deb12u2",
      "OpenSSH_9.2p1 Debian-2+deb12u3",
  };
  static const std::vector<std::string> kRaspbian = {
      "OpenSSH_9.2p1 Raspbian-2",
      "OpenSSH_9.2p1 Raspbian-2+deb12u1",
      "OpenSSH_9.2p1 Raspbian-2+deb12u2",
      "OpenSSH_9.2p1 Raspbian-2+deb12u3",
  };
  static const std::vector<std::string> kFreeBsd = {
      "OpenSSH_9.6 FreeBSD-20240104",
  };
  static const std::vector<std::string> kOther = {
      "dropbear_2020.81", "dropbear_2022.83", "OpenSSH_9.7", "OpenSSH_8.4",
      "ROSSSH",
  };
  if (os == "Ubuntu") return kUbuntu;
  if (os == "Debian") return kDebian;
  if (os == "Raspbian") return kRaspbian;
  if (os == "FreeBSD") return kFreeBsd;
  return kOther;
}

std::string ssh_banner(const std::string& os, std::size_t version_index) {
  const auto& lineage = ssh_version_lineage(os);
  if (lineage.empty()) throw std::logic_error("empty SSH lineage");
  if (version_index >= lineage.size()) version_index = lineage.size() - 1;
  return "SSH-2.0-" + lineage[version_index];
}

namespace {

// AVM OUIs from the builtin registry (oui_db.cpp).
const std::vector<std::uint32_t> kAvmOuis = {0x001A4F, 0xC80E14, 0x3CA62F};
const std::vector<std::uint32_t> kAvmGmbhOuis = {0xE0286D, 0x443708};
// Consumer-electronics OUIs for IoT gadgets, weighted by listing order
// (Table 4 mid-field vendors).
const std::vector<std::uint32_t> kGadgetOuis = {
    0x74DA88, 0x0C47C9, 0xF0D2F1,  // Amazon
    0x8CF5A3, 0xE8508B,            // Samsung
    0x000E58, 0x48A6B8,            // Sonos
    0xA89675,                      // vivo
    0x503237,                      // Ogemray
    0x98D371,                      // China Dragon
    0x1C77F6,                      // OPPO
    0x84E0F4,                      // iComm
    0xB0989F, 0x903A72,            // Haier
    0xD8325A,                      // Gaoshengda
    0x48D875,                      // Fiberhome
    0xC83A35,                      // Tenda
    0x64B473,                      // Xiaomi
    0x18C3F4,                      // Earda
    0xF4B8A7,                      // Shiyuan
    0x88DE7C,                      // Cultraview
};
const std::vector<std::uint32_t> kRaspberryOuis = {0xB827EB, 0xDCA632};
const std::vector<std::uint32_t> kCiscoOuis = {0x5C5AC7};
const std::vector<std::uint32_t> kDlinkOuis = {0xBC223A, 0x1C7EE5};
const std::vector<std::uint32_t> kCpeOuis = {0x50C7BF, 0xC025E9, 0x001B2F,
                                             0x9C3DCF, 0x001DAA, 0x48D875};

std::vector<DeviceProfile> build_catalogue() {
  std::vector<DeviceProfile> v;

  // ------------------------------------------------------------ FRITZ! family
  // AVM's customer base is overwhelmingly European (Appendix B): the DE
  // multiplier dominates, with a small worldwide tail.
  {
    DeviceProfile p;
    p.cls = DeviceClass::kFritzBox;
    p.model = "FRITZ!Box 7590";
    p.weight = 4.2;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"DE", 2.5}, {"EU", 1.0}, {"*", 0.002}};
    p.http = {.enabled = 0.5, .tls = 1.0, .status = 200, .title = "FRITZ!Box",
              .server_header = "AVM FRITZ!Box",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.95, .mean_interval_hours = 6};
    p.addr = {.iid = IidMode::kEui64, .vendor_mac = 0.97, .unlisted_oui = 0.0,
              .ouis = kAvmOuis, .daily_prefix_change = 0.35,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.18, .traceroute = 0.05};  // MyFRITZ names in CT logs
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kFritzRepeater;
    p.model = "FRITZ!Repeater 6000";
    p.weight = 0.20;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"DE", 2.5}, {"EU", 1.0}, {"*", 0.001}};
    p.http = {.enabled = 0.45, .tls = 1.0, .status = 200,
              .title = "FRITZ!Repeater 6000",
              .server_header = "AVM FRITZ!Repeater",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.95, .mean_interval_hours = 6};
    p.addr = {.iid = IidMode::kEui64, .vendor_mac = 0.97, .unlisted_oui = 0.0,
              .ouis = kAvmGmbhOuis, .daily_prefix_change = 0.35,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.0, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kFritzPowerline;
    p.model = "FRITZ!Powerline 1260";
    p.weight = 0.02;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"DE", 2.5}, {"EU", 1.0}, {"*", 0.0}};
    p.http = {.enabled = 0.45, .tls = 1.0, .status = 200,
              .title = "FRITZ!Powerline 1260",
              .server_header = "AVM FRITZ!Powerline",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.95, .mean_interval_hours = 6};
    p.addr = {.iid = IidMode::kEui64, .vendor_mac = 0.97, .unlisted_oui = 0.0,
              .ouis = kAvmGmbhOuis, .daily_prefix_change = 0.35,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.0, .traceroute = 0.0};
    v.push_back(p);
  }

  // ---------------------------------------------------------------- other CPE
  {
    // D-LINK gear is numerous in the hitlist (rDNS-discoverable, static
    // addressing) yet absent from NTP data: firmware uses vendor NTP
    // servers, not the pool (Table 3: 46 548 vs 0).
    DeviceProfile p;
    p.cls = DeviceClass::kDlinkCpe;
    p.model = "D-LINK DIR-853";
    p.weight = 0.45;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"IN", 0.15}, {"*", 1.0}};
    p.http = {.enabled = 0.8, .tls = 1.0, .status = 200, .title = "D-LINK",
              .server_header = "lighttpd",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.0, .mean_interval_hours = 24};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = kDlinkOuis,
              .daily_prefix_change = 0.0, .daily_iid_change = 0.0,
              .extra_addresses = 0};
    p.disc = {.dns = 0.6, .traceroute = 0.2};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kCiscoWap;
    p.model = "WAP150 Wireless-AC/N Dual Radio Access Point with PoE";
    p.weight = 0.005;
    p.placement = Placement::kEyeball;
    p.http = {.enabled = 0.9, .tls = 1.0, .status = 200,
              .title = "WAP150 Wireless-AC/N Dual Radio Access Point with PoE",
              .server_header = "cisco",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.9, .mean_interval_hours = 6};
    p.addr = {.iid = IidMode::kEui64, .vendor_mac = 0.95, .unlisted_oui = 0,
              .ouis = kCiscoOuis, .daily_prefix_change = 0.3,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.0, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // NTP-only Chinese/SE-Asian mobile-router web UIs (plain HTTP, so they
    // show up in the by-network Table 6 but not in the cert-keyed Table 3).
    DeviceProfile p;
    p.cls = DeviceClass::kGenericCpe;
    p.model = "UFI\xE9\x85\x8D\xE7\xBD\xAE\xE7\xAE\xA1\xE7\x90\x86-ZHXL_V2.0.0";
    p.weight = 0.03;
    p.placement = Placement::kMobile;
    p.country_mult = {{"IN", 1.6}, {"VN", 1.5}, {"TH", 1.5}, {"*", 0.1}};
    p.http = {.enabled = 0.9, .tls = 0.0, .status = 200,
              .title = "UFI\xE9\x85\x8D\xE7\xBD\xAE\xE7\xAE\xA1\xE7\x90\x86-ZHXL_V2.0.0",
              .server_header = "GoAhead-Webs"};
    p.ntp = {.uses_pool = 0.95, .mean_interval_hours = 4};
    p.addr = {.iid = IidMode::kEui64, .vendor_mac = 0.4, .unlisted_oui = 0.85,
              .ouis = kCpeOuis, .daily_prefix_change = 0.8,
              .daily_iid_change = 0.1, .extra_addresses = 0};
    p.disc = {.dns = 0.0, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kGenericCpe;
    p.model = "My Modem";
    p.weight = 0.02;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"BR", 2.0}, {"ZA", 1.5}, {"*", 0.3}};
    p.http = {.enabled = 0.9, .tls = 0.0, .status = 200, .title = "My Modem",
              .server_header = "micro_httpd"};
    p.ntp = {.uses_pool = 0.9, .mean_interval_hours = 6};
    p.addr = {.iid = IidMode::kEui64, .vendor_mac = 0.5, .unlisted_oui = 0.5,
              .ouis = kCpeOuis, .daily_prefix_change = 0.7,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.0, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // GPON gateways: hitlist-only (rDNS zones), plain HTTP.
    DeviceProfile p;
    p.cls = DeviceClass::kGenericCpe;
    p.model = "GPON Home Gateway";
    p.weight = 0.35;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"IN", 0.5}, {"*", 1.0}};
    p.http = {.enabled = 0.85, .tls = 0.0, .status = 200,
              .title = "GPON Home Gateway", .server_header = "Boa/0.94"};
    p.ntp = {.uses_pool = 0.0, .mean_interval_hours = 24};
    p.addr = {.iid = IidMode::kStaticLowByte, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.55, .traceroute = 0.3};
    v.push_back(p);
  }
  {
    // ISP-branded CPE web UI: the firmware image ships one TLS key for the
    // whole fleet — the Section 6 "most-used key across dozens of ASes".
    DeviceProfile p;
    p.cls = DeviceClass::kGenericCpe;
    p.model = "Home";
    p.weight = 0.06;
    p.placement = Placement::kEyeball;
    p.http = {.enabled = 0.85, .tls = 1.0, .status = 200, .title = "Home",
              .server_header = "mini_httpd",
              .cert = KeyProvisioning::kVendorShared};
    p.ntp = {.uses_pool = 0.85, .mean_interval_hours = 6};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.3,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.12, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kGenericCpe;
    p.model = "Ms Portal";
    p.weight = 0.02;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"ID", 2.0}, {"*", 0.3}};
    p.http = {.enabled = 0.9, .tls = 0.0, .status = 200, .title = "Ms Portal",
              .server_header = "nginx"};
    p.ntp = {.uses_pool = 0.85, .mean_interval_hours = 6};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.5,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.07, .traceroute = 0.0};
    v.push_back(p);
  }

  // ------------------------------------------------- end-user Linux machines
  {
    DeviceProfile p;
    p.cls = DeviceClass::kRaspbianHome;
    p.model = "Raspberry Pi (Raspbian)";
    p.weight = 0.055;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"EU", 1.6}, {"US", 1.3}, {"IN", 0.10}, {"*", 0.5}};
    p.ssh = {.enabled = 0.95, .os = "Raspbian", .outdated = 0.82,
             .key = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.85, .mean_interval_hours = 5};
    p.addr = {.iid = IidMode::kEui64, .vendor_mac = 0.9, .unlisted_oui = 0,
              .ouis = kRaspberryOuis, .daily_prefix_change = 0.3,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.08, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kHomeLinuxServer;
    p.model = "home Debian box";
    p.weight = 0.07;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"EU", 1.4}, {"US", 1.2}, {"IN", 0.15}, {"*", 0.6}};
    p.ssh = {.enabled = 0.9, .os = "Debian", .outdated = 0.75,
             .key = KeyProvisioning::kUniquePerDevice};
    p.http = {.enabled = 0.08, .tls = 0.5, .status = 200,
              .title = "Apache2 Ubuntu Default Page: It works",
              .server_header = "Apache/2.4.57"};
    p.ntp = {.uses_pool = 0.9, .mean_interval_hours = 5};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.4,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.10, .traceroute = 0.0};
    v.push_back(p);
  }

  // -------------------------------------------- the invisible consumer mass
  {
    // Smartphones: privacy addresses regenerated daily; enormous NTP
    // traffic; no reachable services. They drive the address volume and the
    // low hit rate (Section 6: 0.42 permille).
    DeviceProfile p;
    p.cls = DeviceClass::kSmartphone;
    p.model = "smartphone";
    p.weight = 1.1;
    p.placement = Placement::kMixed;  // cellular + home Wi-Fi
    p.country_mult = {{"IN", 1.25}, {"*", 1.0}};
    p.ntp = {.uses_pool = 0.75, .mean_interval_hours = 5};
    p.addr = {.iid = IidMode::kPrivacyRandom, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.35,
              .daily_iid_change = 0.95, .extra_addresses = 1};
    p.disc = {.dns = 0.0, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // Wi-Fi consumer electronics with SLAAC EUI-64 addressing: smart TVs,
    // speakers, set-top boxes. The EUI-64 vendor analysis (Table 4, App. B)
    // keys on these. Many cheap devices carry unregistered OUIs.
    DeviceProfile p;
    p.cls = DeviceClass::kIotGadget;
    p.model = "Wi-Fi consumer device";
    p.weight = 0.9;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"IN", 1.3}, {"CN", 1.2}, {"*", 1.0}};
    p.ntp = {.uses_pool = 0.8, .mean_interval_hours = 6};
    p.addr = {.iid = IidMode::kEui64, .vendor_mac = 0.4,
              .unlisted_oui = 0.5, .ouis = kGadgetOuis,
              .daily_prefix_change = 0.35, .daily_iid_change = 0.25,
              .extra_addresses = 0};
    p.disc = {.dns = 0.0, .traceroute = 0.0};
    v.push_back(p);
  }

  // ------------------------------------------------------------ CoAP devices
  {
    DeviceProfile p;
    p.cls = DeviceClass::kCastDevice;
    p.model = "cast media device";
    p.weight = 0.032;
    p.placement = Placement::kEyeball;
    p.coap = {.enabled = 0.9, .resources = {"/castDeviceSearch"}};
    p.ntp = {.uses_pool = 0.9, .mean_interval_hours = 5};
    p.addr = {.iid = IidMode::kEui64, .vendor_mac = 0.5, .unlisted_oui = 0.4,
              .ouis = kGadgetOuis, .daily_prefix_change = 0.5,
              .daily_iid_change = 0.1, .extra_addresses = 0};
    p.disc = {.dns = 0.0, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // Cryptocurrency-backed shared Wi-Fi endpoints (QLC chain).
    DeviceProfile p;
    p.cls = DeviceClass::kQlinkWifi;
    p.model = "qlink Wi-Fi AP";
    p.weight = 0.022;
    p.placement = Placement::kEyeball;
    p.coap = {.enabled = 0.9,
              .resources = {"/qlink/ping", "/qlink/config", "/qlink/stats"}};
    p.ntp = {.uses_pool = 0.9, .mean_interval_hours = 6};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.01,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.6, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kEfentoSensor;
    p.model = "Efento sensor gateway";
    p.weight = 0.0035;
    p.placement = Placement::kHosting;  // managed deployments
    p.coap = {.enabled = 0.95, .resources = {"/efento/m", "/efento/c"}};
    p.ntp = {.uses_pool = 0.06, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowTwoBytes, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.9, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kNanoleaf;
    p.model = "Nanoleaf panels";
    p.weight = 0.004;
    p.placement = Placement::kEyeball;
    p.coap = {.enabled = 0.95, .resources = {"/nanoleaf/state"}};
    p.ntp = {.uses_pool = 0.05, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.02,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.85, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // Devices answering /.well-known/core with an empty or exotic set.
    DeviceProfile p;
    p.cls = DeviceClass::kCoapMisc;
    p.model = "CoAP misc";
    p.weight = 0.004;
    p.placement = Placement::kMixed;
    p.coap = {.enabled = 0.9, .resources = {}};
    p.ntp = {.uses_pool = 0.35, .mean_interval_hours = 8};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.1,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.35, .traceroute = 0.0};
    v.push_back(p);
  }

  // ------------------------------------------------------------ IoT brokers
  {
    // Home-automation MQTT brokers: frequently wide open (Figure 3).
    DeviceProfile p;
    p.cls = DeviceClass::kHomeMqttBroker;
    p.model = "home MQTT broker";
    p.weight = 0.014;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"EU", 1.3}, {"US", 1.2}, {"IN", 0.3}, {"*", 0.7}};
    p.mqtt = {.enabled = 0.95, .tls = 0.12, .auth = 0.42,
              .cert = KeyProvisioning::kSharedPool, .shared_pool_size = 3};
    p.ntp = {.uses_pool = 0.9, .mean_interval_hours = 5};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.4,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.04, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kCloudMqttBroker;
    p.model = "cloud MQTT broker";
    p.weight = 0.17;
    p.placement = Placement::kHosting;
    p.mqtt = {.enabled = 0.95, .tls = 0.025, .auth = 0.82,
              .cert = KeyProvisioning::kSharedPool, .shared_pool_size = 6};
    p.ntp = {.uses_pool = 0.05, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowByte, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.8, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kCloudAmqpBroker;
    p.model = "cloud AMQP broker";
    p.weight = 0.012;
    p.placement = Placement::kHosting;
    p.amqp = {.enabled = 0.95, .tls = 0.035, .auth = 0.93,
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.25, .mean_interval_hours = 10};
    p.addr = {.iid = IidMode::kStaticLowByte, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.7, .traceroute = 0.0};
    v.push_back(p);
  }

  // -------------------------------------------------------- hosting / servers
  {
    // Professionally managed Ubuntu fleets: DNS-visible, own time infra,
    // mostly patched.
    DeviceProfile p;
    p.cls = DeviceClass::kUbuntuServer;
    p.model = "managed Ubuntu server";
    p.weight = 0.50;
    p.placement = Placement::kHosting;
    p.ssh = {.enabled = 0.95, .os = "Ubuntu", .outdated = 0.50,
             .key = KeyProvisioning::kUniquePerDevice};
    p.http = {.enabled = 0.45, .tls = 0.65, .status = 200,
              .title = "Welcome to nginx!", .server_header = "nginx"};
    p.ntp = {.uses_pool = 0.02, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowByte, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.9, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // Self-managed Ubuntu VPSes: default timesyncd -> pool; patchier.
    DeviceProfile p;
    p.cls = DeviceClass::kUbuntuServer;
    p.model = "self-managed Ubuntu VPS";
    p.weight = 0.10;
    p.placement = Placement::kHosting;
    p.ssh = {.enabled = 0.95, .os = "Ubuntu", .outdated = 0.68,
             .key = KeyProvisioning::kSharedPool, .shared_pool_size = 512};
    // Golden-image deployments also clone the web certificate.
    p.http = {.enabled = 0.35, .tls = 0.5, .status = 200,
              .title = "Apache2 Ubuntu Default Page: It works",
              .server_header = "Apache/2.4.52",
              .cert = KeyProvisioning::kSharedPool, .shared_pool_size = 48};
    p.ntp = {.uses_pool = 0.55, .mean_interval_hours = 8};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.5, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kDebianServer;
    p.model = "Debian server";
    p.weight = 0.24;
    p.placement = Placement::kHosting;
    p.ssh = {.enabled = 0.95, .os = "Debian", .outdated = 0.52,
             .key = KeyProvisioning::kUniquePerDevice};
    p.http = {.enabled = 0.3, .tls = 0.6, .status = 200,
              .title = "Nothing Page", .server_header = "nginx"};
    p.ntp = {.uses_pool = 0.03, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowByte, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.85, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kFreebsdServer;
    p.model = "FreeBSD server";
    p.weight = 0.02;
    p.placement = Placement::kHosting;
    p.ssh = {.enabled = 0.95, .os = "FreeBSD", .outdated = 0.4,
             .key = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.01, .mean_interval_hours = 24};
    p.addr = {.iid = IidMode::kStaticLowByte, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.9, .traceroute = 0.1};
    v.push_back(p);
  }
  {
    // Eyeball NAS boxes and appliances with anonymous SSH banners.
    DeviceProfile p;
    p.cls = DeviceClass::kSshApplianceOther;
    p.model = "NAS appliance";
    p.weight = 0.04;
    p.placement = Placement::kEyeball;
    p.ssh = {.enabled = 0.9, .os = "", .outdated = 0.7,
             .key = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.8, .mean_interval_hours = 6};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.3,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.03, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kSshApplianceOther;
    p.model = "hosted appliance";
    p.weight = 0.48;
    p.placement = Placement::kHosting;
    p.ssh = {.enabled = 0.9, .os = "", .outdated = 0.55,
             .key = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.02, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowTwoBytes, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.55, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::k3cxServer;
    p.model = "3CX Webclient";
    p.weight = 0.035;
    p.placement = Placement::kHosting;
    p.http = {.enabled = 0.95, .tls = 1.0, .status = 200,
              .title = "3CX Webclient", .server_header = "nginx",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.01, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowTwoBytes, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.85, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::k3cxServer;
    p.model = "3CX Phone System Management Console";
    p.weight = 0.030;
    p.placement = Placement::kHosting;
    p.http = {.enabled = 0.95, .tls = 1.0, .status = 200,
              .title = "3CX Phone System Management Console",
              .server_header = "nginx",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.02, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowTwoBytes, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.85, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // Mass-hosting parking pages, including the Host Europe shape whose
    // titles embed the scanned IP ("Host Europe GmbH – {ip}").
    DeviceProfile p;
    p.cls = DeviceClass::kParkingPage;
    p.model = "Host Europe GmbH - {ip}";
    p.weight = 0.09;
    p.placement = Placement::kHosting;
    p.country_mult = {{"DE", 4.0}, {"EU", 1.5}, {"*", 0.2}};
    p.http = {.enabled = 1.0, .tls = 1.0, .status = 200,
              .title = "Host Europe GmbH - {ip}", .server_header = "Apache",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.0, .mean_interval_hours = 24};
    p.addr = {.iid = IidMode::kStaticLowTwoBytes, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.9, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kParkingPage;
    p.model = "{ip} was not found";
    p.weight = 0.10;
    p.placement = Placement::kHosting;
    p.http = {.enabled = 1.0, .tls = 1.0, .status = 200,
              .title = "{ip} was not found", .server_header = "nginx",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.0, .mean_interval_hours = 24};
    p.addr = {.iid = IidMode::kStaticLowTwoBytes, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.88, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // French ISP gateway web UI (Table 8's "Freebox OS :: Identification"):
    // hitlist-leaning CPE with static addressing.
    DeviceProfile p;
    p.cls = DeviceClass::kGenericCpe;
    p.model = "Freebox OS :: Identification";
    p.weight = 0.04;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"FR", 20.0}, {"*", 0.0}};
    p.http = {.enabled = 0.9, .tls = 1.0, .status = 200,
              .title = "Freebox OS :: Identification",
              .server_header = "nginx",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.02, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowByte, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.5, .traceroute = 0.1};
    v.push_back(p);
  }
  {
    // Prosumer UniFi consoles: pool NTP, some exposed HTTPS.
    DeviceProfile p;
    p.cls = DeviceClass::kGenericCpe;
    p.model = "UniFi OS";
    p.weight = 0.012;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"EU", 1.2}, {"US", 1.5}, {"IN", 0.1}, {"*", 0.5}};
    p.http = {.enabled = 0.8, .tls = 1.0, .status = 200, .title = "UniFi OS",
              .server_header = "unifi",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.85, .mean_interval_hours = 6};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.25,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.1, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // Hobbyist 3D-printer frontends (Table 8 "OctoPrint Login"):
    // NTP-leaning home deployments.
    DeviceProfile p;
    p.cls = DeviceClass::kGenericCpe;
    p.model = "OctoPrint Login";
    p.weight = 0.008;
    p.placement = Placement::kEyeball;
    p.country_mult = {{"EU", 1.5}, {"US", 1.3}, {"IN", 0.05}, {"*", 0.4}};
    p.http = {.enabled = 0.85, .tls = 1.0, .status = 200,
              .title = "OctoPrint Login", .server_header = "Tornado",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.9, .mean_interval_hours = 5};
    p.addr = {.iid = IidMode::kDhcpRandomish, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.35,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.05, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // Hosting-panel landing pages (Table 8 "FASTPANEL2").
    DeviceProfile p;
    p.cls = DeviceClass::kWebHostingServer;
    p.model = "FASTPANEL2";
    p.weight = 0.05;
    p.placement = Placement::kHosting;
    p.http = {.enabled = 0.95, .tls = 0.8, .status = 200,
              .title = "FASTPANEL2", .server_header = "nginx",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.02, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowTwoBytes, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.8, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kWebHostingServer;
    p.model = "Index of /pub/";
    p.weight = 0.06;
    p.placement = Placement::kHosting;
    p.http = {.enabled = 0.95, .tls = 0.6, .status = 200,
              .title = "Index of /pub/", .server_header = "Apache",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.03, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowByte, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.75, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kWebHostingServer;
    p.model = "Login - Join";
    p.weight = 0.05;
    p.placement = Placement::kHosting;
    p.http = {.enabled = 0.95, .tls = 0.7, .status = 200,
              .title = "Login - Join", .server_header = "nginx",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.08, .mean_interval_hours = 10};
    p.addr = {.iid = IidMode::kStaticLowTwoBytes, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.7, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // Generic hosted web servers answering with empty or default pages
    // (the hitlist's dominant "(no title present)" group).
    DeviceProfile p;
    p.cls = DeviceClass::kWebHostingServer;
    p.model = "hosted web server";
    p.weight = 0.75;
    p.placement = Placement::kHosting;
    p.http = {.enabled = 0.95, .tls = 0.75, .status = 200, .title = "",
              .server_header = "nginx",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.012, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowByte, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.85, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    DeviceProfile p;
    p.cls = DeviceClass::kWebHostingServer;
    p.model = "misc hosted site";
    p.weight = 0.55;
    p.placement = Placement::kHosting;
    p.http = {.enabled = 0.95, .tls = 0.7, .status = 200,
              .title = "Plesk Obsidian 18.0.34", .server_header = "Apache",
              .cert = KeyProvisioning::kUniquePerDevice};
    p.ntp = {.uses_pool = 0.015, .mean_interval_hours = 12};
    p.addr = {.iid = IidMode::kStaticLowTwoBytes, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.8, .traceroute = 0.0};
    v.push_back(p);
  }
  {
    // Real (non-aliased) CDN load balancers with SNI-required TLS.
    DeviceProfile p;
    p.cls = DeviceClass::kCdnLoadBalancer;
    p.model = "CDN load balancer";
    p.weight = 0.03;
    p.placement = Placement::kHosting;
    p.http = {.enabled = 1.0, .tls = 1.0, .status = 200, .title = "",
              .server_header = "CloudFront", .sni_required = true};
    p.ntp = {.uses_pool = 0.0, .mean_interval_hours = 24};
    p.addr = {.iid = IidMode::kStaticLowTwoBytes, .vendor_mac = 0,
              .unlisted_oui = 0, .ouis = {}, .daily_prefix_change = 0.0,
              .daily_iid_change = 0.0, .extra_addresses = 0};
    p.disc = {.dns = 0.95, .traceroute = 0.0};
    v.push_back(p);
  }

  return v;
}

}  // namespace

const std::vector<DeviceProfile>& device_catalogue() {
  static const std::vector<DeviceProfile> kCatalogue = build_catalogue();
  return kCatalogue;
}

}  // namespace tts::inet
