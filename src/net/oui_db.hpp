// Compact stand-in for the IEEE MA-L (OUI) registry.
//
// The paper joins MACs recovered from EUI-64 IIDs against the IEEE registry
// to rank vendors (Table 4). Shipping the multi-megabyte registry is neither
// possible offline nor necessary: the synthetic population only ever embeds
// MACs drawn from this table (plus deliberately unlisted/locally-administered
// ones), so a compact registry exercises the same join. Vendor names are the
// paper's Table 4 names; OUI values are representative assignments.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/mac.hpp"

namespace tts::net {

struct OuiEntry {
  std::uint32_t oui;        // 24-bit OUI
  std::string vendor;       // registered organisation name
};

class OuiDatabase {
 public:
  /// The built-in registry (paper Table 4 vendors and extras).
  static const OuiDatabase& builtin();

  OuiDatabase() = default;
  explicit OuiDatabase(std::vector<OuiEntry> entries);

  void add(std::uint32_t oui, std::string vendor);

  /// Vendor name for an OUI; nullopt when unlisted.
  std::optional<std::string_view> lookup(std::uint32_t oui) const;
  std::optional<std::string_view> lookup(const MacAddress& mac) const;

  /// All OUIs registered for a vendor (linear scan; registry is tiny).
  std::vector<std::uint32_t> ouis_for(std::string_view vendor) const;

  std::size_t size() const { return by_oui_.size(); }

  /// Classify an address's MAC embedding (Figure 4's categories).
  MacEmbedding classify(const Ipv6Address& addr) const;

 private:
  std::unordered_map<std::uint32_t, std::string> by_oui_;
};

}  // namespace tts::net
