// Discrete-event engine: a time-ordered queue of callbacks.
//
// Determinism contract: events at equal timestamps fire in scheduling order
// (a monotonic sequence number breaks ties), so runs are reproducible
// regardless of heap internals.
//
// Observability: the executed counter and pending-depth gauge are always
// live (they are the queue's own state); attach_metrics() additionally
// enrols them in an obs::Registry and can enable a wall-clock dispatch
// histogram (how long each callback runs) — wall readings are
// observational only and never influence the virtual clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "simnet/time.hpp"

namespace tts::simnet {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to now if in the past).
  void schedule_at(SimTime at, Callback fn);
  /// Schedule `fn` after `delay`.
  void schedule_in(SimDuration delay, Callback fn);

  /// Run events until the queue drains or `until` is passed; the clock ends
  /// at the later of its current value and the last executed event (or
  /// `until` if given and reached). Returns the number of events executed.
  std::uint64_t run();
  std::uint64_t run_until(SimTime until);

  /// Execute at most one event; false when the queue is empty.
  bool step();

  std::size_t pending() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Total events executed over the queue's lifetime.
  std::uint64_t executed() const { return executed_ctr_.value(); }

  /// Enrol the queue's instruments (events_executed, events_pending and —
  /// when `time_dispatch` — the dispatch_wall_ns histogram) in `registry`.
  /// The registry must outlive this queue.
  void attach_metrics(obs::Registry& registry, obs::Labels labels = {},
                      bool time_dispatch = true);

  void enable_dispatch_timing(bool on) { time_dispatch_ = on; }
  /// Time only every `every`-th event (rounded down to a power of two;
  /// default 1 = every event). Sampling keeps the two steady_clock reads
  /// off most dispatches — at study scale the full-timing cost dominates
  /// the whole observability overhead.
  void set_dispatch_sampling(std::uint32_t every);
  const obs::Histogram& dispatch_wall_ns() const { return dispatch_wall_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;

  obs::Counter executed_ctr_;
  obs::Gauge pending_gauge_;
  obs::Histogram dispatch_wall_{obs::Histogram::exponential(250, 4.0, 12)};
  bool time_dispatch_ = false;
  std::uint64_t dispatch_mask_ = 0;  // time when (executed & mask) == 0
  obs::Registry* registry_ = nullptr;
};

/// A re-schedulable one-shot timer slot: one logical deadline, at most one
/// *useful* heap entry, re-armable in both directions.
///
/// schedule_at() alone cannot model a deadline that moves: every re-arm
/// pushes a fresh entry and the superseded ones sit in the heap until their
/// (dead) time comes. A Timer keeps a single shared deadline instead:
/// re-arming earlier pushes one new entry and invalidates the old by
/// generation; re-arming *later* pushes nothing — the existing entry fires,
/// notices the deadline moved, and re-schedules itself. This is what lets
/// the scan pump coalesce its per-grant wake-ups into one slot per engine.
///
/// The callback only runs when the armed deadline is actually reached;
/// cancel() and destruction make any in-flight heap entries inert. The
/// EventQueue must outlive the Timer's pending entries (it owns them).
class Timer {
 public:
  Timer(EventQueue& queue, EventQueue::Callback fn);
  ~Timer();
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Move the deadline to `at` (clamped to now) and arm. Idempotent for an
  /// unchanged deadline.
  void arm(SimTime at);
  void cancel();

  bool armed() const { return state_->armed; }
  /// Deadline of the armed timer (meaningless when !armed()).
  SimTime deadline() const { return state_->target; }
  /// Heap entries pushed over the timer's lifetime — the cost a pump pays
  /// for its wake-ups; tests assert coalescing keeps it near the number of
  /// distinct deadlines actually reached.
  std::uint64_t entries_scheduled() const { return state_->entries; }

 private:
  struct State {
    EventQueue* queue;
    EventQueue::Callback fn;
    bool armed = false;
    SimTime target = 0;
    bool entry_live = false;  // a non-superseded heap entry exists
    SimTime entry_at = 0;
    std::uint64_t gen = 0;
    std::uint64_t entries = 0;
  };

  static void push_entry(const std::shared_ptr<State>& s);
  static void fire(const std::shared_ptr<State>& s, std::uint64_t gen);

  std::shared_ptr<State> state_;
};

}  // namespace tts::simnet
