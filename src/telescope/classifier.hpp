// Scan-to-query matching and actor characterisation (Section 5.2).
//
// Every captured packet aimed at a one-shot probe address is attributed to
// the NTP server that answered that address's single query. Scan sources
// are clustered into actors via shared server attribution (two cloud VMs
// scanning addresses leaked by the same pool servers belong to the same
// operation), then characterised: ports touched, query-to-scan delay,
// per-target scan duration, self-identification — yielding the
// overt-research vs covert-actor distinction the paper draws.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "inet/as_registry.hpp"
#include "obs/trace.hpp"
#include "telescope/prober.hpp"

namespace tts::telescope {

enum class ActorClass : std::uint8_t {
  kResearch,   // fast, broad, openly identified
  kCovert,     // slow, partial coverage, anonymous cloud infrastructure
  kUnknown,
};

std::string_view to_string(ActorClass c);

struct ObservedActor {
  std::vector<net::Ipv6Address> scan_sources;
  std::set<net::Ipv6Address> ntp_servers;   // servers leaking to this actor
  std::set<std::uint16_t> ports;
  std::set<net::AsNumber> source_ases;
  std::uint64_t packets = 0;
  std::uint64_t targets = 0;
  simnet::SimDuration median_delay = 0;     // NTP query -> first scan packet
  simnet::SimDuration median_target_span = 0;  // first -> last packet/target
  bool identified = false;                  // rDNS/web-page identification
  ActorClass classification = ActorClass::kUnknown;
};

struct ClassifierReport {
  std::vector<ObservedActor> actors;
  std::uint64_t total_captures = 0;
  std::uint64_t matched_captures = 0;   // attributed to an NTP query
  std::uint64_t scattering = 0;         // hits outside the probe prefix
};

/// `identity_of` models the out-of-band identification check (reverse DNS,
/// hosted explanation pages): returns a non-empty identity string when the
/// scan source identifies itself. With a tracer, the pass records a
/// "telescope/classify" span (wall + virtual duration).
ClassifierReport classify_actors(
    const PoolProber& prober, const inet::AsRegistry& registry,
    const std::function<std::string(const net::Ipv6Address&)>& identity_of,
    obs::Tracer* tracer = nullptr);

}  // namespace tts::telescope
