// IANA ports scanned by the study (Section 4.1, Table 2).
#pragma once

#include <cstdint>

namespace tts::proto {

inline constexpr std::uint16_t kHttpPort = 80;
inline constexpr std::uint16_t kHttpsPort = 443;
inline constexpr std::uint16_t kSshPort = 22;
inline constexpr std::uint16_t kMqttPort = 1883;
inline constexpr std::uint16_t kMqttsPort = 8883;
inline constexpr std::uint16_t kAmqpPort = 5672;
inline constexpr std::uint16_t kAmqpsPort = 5671;
inline constexpr std::uint16_t kCoapPort = 5683;  // UDP

}  // namespace tts::proto
