// SSH analyses: OS distribution by unique host key (Table 3) and
// patch-level outdatedness for Debian-derived distributions (Figure 2,
// Section 4.4.1). Deduplication follows the paper: one unit per distinct
// host key; the by-network variants (Figure 5, Table 6) weigh by nets.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "scan/results.hpp"

namespace tts::scan {
class ResultStore;
}

namespace tts::analysis {

struct SshHost {
  std::uint64_t host_key = 0;
  std::string banner;
  std::string os;  // "Ubuntu"/"Debian"/"Raspbian"/"FreeBSD"/"" (other)
  std::vector<net::Ipv6Address> addresses;  // all addresses presenting it
};

/// Deduplicate successful SSH grabs of a dataset by host key.
std::vector<SshHost> dedup_ssh_hosts(const scan::ResultStore& results,
                                     scan::Dataset dataset);

/// OS -> unique-host-key count (Table 3's SSH panel; "" = other/unknown).
/// Ordered so direct iteration renders deterministically.
std::map<std::string, std::uint64_t> os_distribution(
    const std::vector<SshHost>& hosts);

/// Whether a banner carries the latest patch level of its lineage.
/// Only meaningful for Debian-derived banners (see assessable()).
bool banner_up_to_date(const std::string& banner);

/// Debian-derived banners unveil their patch level (Section 4.4.1 restricts
/// the outdatedness analysis to them).
bool assessable(const std::string& banner);

struct OutdatednessStats {
  std::uint64_t assessable_hosts = 0;
  std::uint64_t outdated = 0;
  double outdated_share() const {
    return assessable_hosts == 0
               ? 0.0
               : static_cast<double>(outdated) /
                     static_cast<double>(assessable_hosts);
  }
};

/// Figure 2: outdatedness over unique host keys.
OutdatednessStats outdatedness(const std::vector<SshHost>& hosts);

/// Figure 5: outdatedness counting each /N network once per host key.
OutdatednessStats outdatedness_by_network(const std::vector<SshHost>& hosts,
                                          unsigned prefix_len);

}  // namespace tts::analysis
