// Figure 6: broker access control counted by networks — the overall rate
// rises, but the NTP/hitlist MQTT gap persists.
#include "analysis/broker_analysis.hpp"
#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();
  const auto& results = study.results();

  util::TextTable t("Figure 6: broker access control by network");
  t.set_header({"Broker", "Aggregation", "NTP auth", "Hitlist auth"});

  double mqtt_gap_addr = 0, mqtt_gap_64 = 0;
  for (auto kind : {analysis::BrokerKind::kMqtt, analysis::BrokerKind::kAmqp}) {
    const char* name = kind == analysis::BrokerKind::kMqtt ? "MQTT" : "AMQP";
    auto addr_ntp =
        analysis::access_control_by_address(results, scan::Dataset::kNtp, kind);
    auto addr_hit = analysis::access_control_by_address(
        results, scan::Dataset::kHitlist, kind);
    t.add_row({name, "addresses", util::percent(addr_ntp.auth_share()),
               util::percent(addr_hit.auth_share())});
    if (kind == analysis::BrokerKind::kMqtt)
      mqtt_gap_addr = addr_hit.auth_share() - addr_ntp.auth_share();
    for (unsigned len : {48u, 56u, 64u}) {
      auto n = analysis::access_control_by_network(results,
                                                   scan::Dataset::kNtp, kind,
                                                   len);
      auto h = analysis::access_control_by_network(
          results, scan::Dataset::kHitlist, kind, len);
      t.add_row({name, util::cat("/", len), util::percent(n.auth_share()),
                 util::percent(h.auth_share())});
      if (kind == analysis::BrokerKind::kMqtt && len == 64)
        mqtt_gap_64 = h.auth_share() - n.auth_share();
    }
  }
  t.add_note("Paper: the MQTT access-control gap (~40 pp) persists under "
             "network counting; AMQP differences stay marginal.");
  t.render(std::cout);

  bool pass = mqtt_gap_addr > 0.1 && mqtt_gap_64 > 0.1;
  std::cout << "\nShape check (MQTT gap persists by /64): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
