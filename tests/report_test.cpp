#include <gtest/gtest.h>

#include "core/report.hpp"

namespace tts::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static Study& study() {
    static Study* instance = [] {
      auto config = make_study_config(StudyScale::kTiny);
      auto* s = new Study(config);
      s->run();
      return s;
    }();
    return *instance;
  }
};

TEST_F(ReportTest, BuildsCoherentReport) {
  StudyReport report = build_report(study());

  EXPECT_GT(report.collected_addresses, 0u);
  EXPECT_GE(report.ntp_requests, report.collected_addresses);
  EXPECT_EQ(report.per_server.size(), 11u);

  // Scan summaries carry all five protocol rows.
  ASSERT_EQ(report.ntp_scans.rows.size(), 5u);
  ASSERT_EQ(report.hitlist_scans.rows.size(), 5u);
  EXPECT_EQ(report.ntp_scans.rows[0].protocol, "HTTP");
  EXPECT_EQ(report.ntp_scans.rows[4].protocol, "CoAP");

  // The headline invariants hold inside the structured report too.
  EXPECT_GT(report.hitlist_security.secure_share(),
            report.ntp_security.secure_share());
  EXPECT_LE(report.ntp_host_bounds.lower, report.ntp_host_bounds.estimate);
  EXPECT_LE(report.ntp_host_bounds.estimate, report.ntp_host_bounds.upper);
  EXPECT_GT(report.hit_rate, 0.0);
  EXPECT_FALSE(report.title_groups.empty());
}

TEST_F(ReportTest, MarkdownContainsEverySection) {
  StudyReport report = build_report(study());
  std::string md = render_markdown(report);
  for (const char* heading :
       {"# NTP-based IPv6 scanning", "## Collection", "## Address structure",
        "## Scans", "## Device types", "## Security", "## Telescope"}) {
    EXPECT_NE(md.find(heading), std::string::npos) << heading;
  }
  // Table syntax sanity: at least a few markdown table rows.
  std::size_t pipes = 0;
  for (char c : md)
    if (c == '|') ++pipes;
  EXPECT_GT(pipes, 100u);
}

}  // namespace
}  // namespace tts::core
