#include <gtest/gtest.h>

#include "analysis/eui64_analysis.hpp"

namespace tts::analysis {
namespace {

net::Ipv6Address with_mac(const char* mac_text, std::uint64_t hi = 1) {
  auto mac = *net::MacAddress::parse(mac_text);
  return net::Ipv6Address::from_halves(0x2400000000000000ULL | (hi << 32),
                                       net::eui64_iid_from_mac(mac));
}

TEST(Eui64Accumulator, CountsCategories) {
  Eui64Accumulator acc;
  // AVM (listed, unique bit) seen at two addresses with the same MAC.
  acc.add(with_mac("00:1a:4f:01:02:03", 1), 0);
  acc.add(with_mac("00:1a:4f:01:02:03", 2), 0);
  // Unlisted but globally unique.
  acc.add(with_mac("f8:77:66:01:02:03", 3), 1);
  // Locally administered.
  acc.add(with_mac("02:11:22:33:44:55", 4), 1);
  // No EUI-64 marker.
  acc.add(net::Ipv6Address::from_halves(0x2400000000000000ULL, 0x1234567890ULL),
          2);

  EXPECT_EQ(acc.total_addresses(), 5u);
  EXPECT_EQ(acc.eui64_addresses(), 4u);
  EXPECT_EQ(acc.unique_bit_addresses(), 3u);
  EXPECT_EQ(acc.distinct_unique_macs(), 2u);
  EXPECT_EQ(acc.listed_oui_addresses(), 2u);
  EXPECT_EQ(acc.distinct_listed_macs(), 1u);
  // Distinct EUI-64 IIDs: 3 distinct MACs (AVM counted once).
  EXPECT_EQ(acc.distinct_eui64_iids(), 3u);
}

TEST(Eui64Accumulator, VendorRankingSortsByMacs) {
  Eui64Accumulator acc;
  // Two Sonos devices, one Amazon.
  acc.add(with_mac("00:0e:58:00:00:01", 1), 0);
  acc.add(with_mac("00:0e:58:00:00:02", 2), 0);
  acc.add(with_mac("74:da:88:00:00:01", 3), 0);
  auto ranking = acc.vendor_ranking();
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].first, "Sonos, Inc.");
  EXPECT_EQ(ranking[0].second.first, 2u);   // MACs
  EXPECT_EQ(ranking[0].second.second, 2u);  // IPs
  EXPECT_EQ(ranking[1].first, "Amazon Technologies Inc.");
}

TEST(Eui64Accumulator, PerServerEmbedding) {
  Eui64Accumulator acc;
  acc.add(with_mac("00:1a:4f:01:02:03", 1), 3);   // listed -> server 3
  acc.add(with_mac("02:11:22:33:44:55", 2), 3);   // local  -> server 3
  acc.add(with_mac("00:1a:4f:99:02:03", 3), 5);   // listed -> server 5
  const auto& per_server = acc.per_server_embedding();
  using E = net::MacEmbedding;
  EXPECT_EQ(per_server.at(3)[static_cast<std::size_t>(E::kGlobalListed)], 1u);
  EXPECT_EQ(per_server.at(3)[static_cast<std::size_t>(E::kLocal)], 1u);
  EXPECT_EQ(per_server.at(5)[static_cast<std::size_t>(E::kGlobalListed)], 1u);
}

TEST(Eui64Accumulator, AttachToCollector) {
  Eui64Accumulator acc;
  ntp::AddressCollector collector;
  acc.attach(collector);
  collector.record(with_mac("00:1a:4f:01:02:03", 1), 2, 0);
  collector.record(with_mac("00:1a:4f:01:02:03", 1), 2, 1);  // duplicate
  EXPECT_EQ(acc.total_addresses(), 1u);  // only first sighting counted
  EXPECT_EQ(acc.listed_oui_addresses(), 1u);
}

}  // namespace
}  // namespace tts::analysis
