// Ablation: the SNI effect behind Table 2's hitlist TLS numbers. The paper
// attributes 356 M failed handshakes to Cloudfront addresses probed
// without a hostname. Scanning the aliased region twice — once as the
// study does (no SNI) and once with a hostname — flips the TLS outcome.
#include <iostream>

#include "inet/services.hpp"
#include "scan/engine.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace tts;

namespace {

struct SweepResult {
  std::uint64_t tls_ok = 0;
  std::uint64_t tls_failed = 0;
};

SweepResult sweep(bool with_sni) {
  simnet::EventQueue events;
  simnet::Network network(events);
  auto registry = inet::AsRegistry::generate({{}, 7});
  inet::PopulationConfig pc;
  pc.device_scale = 0.01;
  auto population = inet::Population::generate(registry, pc);
  ntp::NtpPool pool;
  inet::RuntimeConfig rc;
  rc.enable_churn = false;
  inet::InternetRuntime runtime(network, population, &pool, rc);
  runtime.start();

  scan::ResultStore results;
  scan::ScanEngineConfig config;
  config.scanner_address =
      net::Ipv6Address::from_halves(0x3fff000000000000ULL, 0x51);
  config.min_protocol_delay = simnet::usec(1);
  config.max_protocol_delay = simnet::usec(2);
  config.max_pps = 50000;
  if (with_sni) config.sni = "www.example.com";
  scan::ScanEngine engine(network, results, config);

  // 400 random addresses inside the aliased region.
  constexpr std::uint64_t kSeed = 42;
  util::Rng rng(kSeed);
  const auto& region = registry.cdn_alias_region();
  for (int i = 0; i < 400; ++i) {
    engine.submit(net::Ipv6Address::from_halves(
        region.address().hi64() | rng.below(1 << 24), rng.next()));
  }
  events.run();

  SweepResult out;
  out.tls_ok = results.count(scan::Dataset::kNtp, scan::Protocol::kHttps,
                             scan::Outcome::kSuccess);
  out.tls_failed = results.count(scan::Dataset::kNtp,
                                 scan::Protocol::kHttps,
                                 scan::Outcome::kTlsFailed);
  return out;
}

}  // namespace

int main() {
  auto without = sweep(false);
  auto with = sweep(true);

  util::TextTable t("Ablation: SNI vs aliased-region TLS outcomes");
  t.set_header({"probe", "TLS handshakes OK", "TLS failed"});
  t.add_row({"no SNI (the study's scans)", util::grouped(without.tls_ok),
             util::grouped(without.tls_failed)});
  t.add_row({"with SNI", util::grouped(with.tls_ok),
             util::grouped(with.tls_failed)});
  t.add_note("Paper: ~356 M Cloudfront addresses answered HTTP but failed "
             "TLS, 'probably due to our requests missing a hostname'.");
  t.render(std::cout);

  bool pass = without.tls_ok == 0 && without.tls_failed > 300 &&
              with.tls_ok > 300 && with.tls_failed == 0;
  std::cout << "\nShape check (hostname flips the outcome): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
