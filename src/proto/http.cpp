#include "proto/http.hpp"

#include <algorithm>

#include "util/format.hpp"

namespace tts::proto {

namespace {

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

// Split a wire buffer into header block and body at the CRLFCRLF boundary.
struct Split {
  std::string head;
  std::string body;
};
std::optional<Split> split_head(std::span<const std::uint8_t> wire) {
  std::string text(wire.begin(), wire.end());
  std::size_t end = text.find("\r\n\r\n");
  if (end == std::string::npos) return std::nullopt;
  return Split{text.substr(0, end), text.substr(end + 4)};
}

std::optional<std::string> header_value(const std::string& head,
                                        std::string_view name) {
  std::size_t pos = 0;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    std::string_view line(head.data() + pos,
                          (eol == std::string::npos ? head.size() : eol) - pos);
    std::size_t colon = line.find(':');
    if (colon != std::string_view::npos &&
        util::istarts_with(line.substr(0, colon), name) &&
        colon == name.size()) {
      std::string_view v = line.substr(colon + 1);
      while (!v.empty() && v.front() == ' ') v.remove_prefix(1);
      return std::string(v);
    }
    if (eol == std::string::npos) break;
    pos = eol + 2;
  }
  return std::nullopt;
}

}  // namespace

std::vector<std::uint8_t> HttpRequest::serialize() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  if (!host.empty()) out += "Host: " + host + "\r\n";
  out += "User-Agent: " + user_agent + "\r\n";
  out += "Accept: */*\r\nConnection: close\r\n\r\n";
  return std::vector<std::uint8_t>(out.begin(), out.end());
}

std::optional<HttpRequest> HttpRequest::parse(
    std::span<const std::uint8_t> wire) {
  auto split = split_head(wire);
  if (!split) return std::nullopt;
  std::size_t eol = split->head.find("\r\n");
  std::string request_line =
      eol == std::string::npos ? split->head : split->head.substr(0, eol);
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos)
    return std::nullopt;
  if (request_line.substr(sp2 + 1).rfind("HTTP/", 0) != 0)
    return std::nullopt;
  HttpRequest req;
  req.method = request_line.substr(0, sp1);
  req.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.host = header_value(split->head, "Host").value_or("");
  req.user_agent = header_value(split->head, "User-Agent").value_or("");
  return req;
}

std::vector<std::uint8_t> HttpResponse::serialize() const {
  std::string out = util::cat("HTTP/1.1 ", status, " ", reason_phrase(status),
                              "\r\n");
  if (!server.empty()) out += "Server: " + server + "\r\n";
  out += "Content-Type: text/html; charset=utf-8\r\n";
  out += util::cat("Content-Length: ", body.size(), "\r\n");
  out += "Connection: close\r\n\r\n";
  out += body;
  return std::vector<std::uint8_t>(out.begin(), out.end());
}

std::optional<HttpResponse> HttpResponse::parse(
    std::span<const std::uint8_t> wire) {
  auto split = split_head(wire);
  if (!split) return std::nullopt;
  if (split->head.rfind("HTTP/1.", 0) != 0) return std::nullopt;
  std::size_t sp = split->head.find(' ');
  if (sp == std::string::npos || sp + 4 > split->head.size())
    return std::nullopt;
  int status = 0;
  for (std::size_t i = sp + 1; i < sp + 4; ++i) {
    char c = split->head[i];
    if (c < '0' || c > '9') return std::nullopt;
    status = status * 10 + (c - '0');
  }
  HttpResponse resp;
  resp.status = status;
  resp.server = header_value(split->head, "Server").value_or("");
  resp.body = std::move(split->body);
  return resp;
}

std::string html_page(const std::string& title) {
  std::string out = "<!DOCTYPE html>\n<html><head>";
  if (!title.empty()) out += "<title>" + title + "</title>";
  out += "</head><body><h1>";
  out += title.empty() ? std::string("It works") : title;
  out += "</h1></body></html>\n";
  return out;
}

std::optional<std::string> extract_title(const std::string& html) {
  auto lower = util::to_lower(html);
  std::size_t open = lower.find("<title>");
  if (open == std::string::npos) return std::nullopt;
  std::size_t start = open + 7;
  std::size_t close = lower.find("</title>", start);
  if (close == std::string::npos) return std::nullopt;
  return html.substr(start, close - start);
}

}  // namespace tts::proto
