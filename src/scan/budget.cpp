#include "scan/budget.hpp"

#include <cmath>
#include <stdexcept>

namespace tts::scan {

SharedBudget::SharedBudget(SharedBudgetConfig config)
    : config_(config) {
  if (!(config_.max_pps > 0))
    throw std::invalid_argument("SharedBudget: max_pps must be positive");
  if (config_.burst_slots < 0)
    throw std::invalid_argument(
        "SharedBudget: burst_slots must be non-negative");
  double exact = 1e6 / config_.max_pps;
  auto gap = static_cast<simnet::SimDuration>(exact);
  gap_ = gap < 1 ? 1 : gap;
  // The fractional part of the exact gap, in 2^-32 us units. Truncating
  // the gap to whole microseconds overshoots the cap (max_pps=4096 ->
  // 244 us = 4098.4 pps); the integer error-feedback accumulator below
  // stretches every 2^32/frac_step_-th step by 1 us so the long-run rate
  // is exactly max_pps, with no floats in the steady state. Exact-divisor
  // rates have frac_step_ == 0 and byte-identical grant sequences.
  if (exact > static_cast<double>(gap_)) {
    double frac = exact - static_cast<double>(gap_);
    auto step = static_cast<std::uint64_t>(
        std::llround(frac * 4294967296.0));  // 2^32
    if (step >= (1ULL << 32)) {
      ++gap_;
      step = 0;
    }
    frac_step_ = step;
  }
}

SharedBudget::~SharedBudget() {
  if (config_.registry)
    for (const auto& c : clients_) config_.registry->drop_owner(c.get());
}

SharedBudget::ClientId SharedBudget::add_client(std::string name,
                                                double weight, WakeFn wake) {
  if (!(weight > 0) || !std::isfinite(weight))
    throw std::invalid_argument(
        "SharedBudget: client weight must be positive and finite");
  auto client = std::make_unique<Client>();
  client->name = std::move(name);
  client->weight = weight;
  client->wake = std::move(wake);
  client->active = true;
  // Late joiners enter at the current virtual time, same as an idle->busy
  // transition: no retroactive claim on capacity spent before they existed.
  client->finish = vtime_;
  if (config_.registry) {
    obs::Labels labels{{"client", client->name}};
    config_.registry->enroll(client->grants, "scan_budget_grants", labels,
                             client.get());
    config_.registry->enroll(client->borrowed, "scan_budget_borrowed_slots",
                             labels, client.get());
    config_.registry->enroll(client->reclaim, "scan_budget_reclaim_us",
                             std::move(labels), client.get());
  }
  clients_.push_back(std::move(client));
  return clients_.size() - 1;
}

void SharedBudget::remove_client(ClientId id) {
  Client& c = *clients_[id];
  if (!c.active) return;
  c.active = false;
  c.backlogged = false;
  c.wanted_since = -1;
  if (config_.registry) config_.registry->drop_owner(&c);
  wake_waiting_peers(id);
}

void SharedBudget::set_backlog(ClientId id, bool backlogged,
                               simnet::SimTime now) {
  Client& c = *clients_[id];
  if (backlogged && !c.backlogged) c.wanted_since = now;
  if (!backlogged) c.wanted_since = -1;
  bool was = c.backlogged;
  c.backlogged = backlogged;
  // A drained client frees its share immediately: peers armed for a
  // contended (later) slot can now claim the next token.
  if (was && !backlogged) wake_waiting_peers(id);
}

bool SharedBudget::deferred_to_peer(ClientId id) const {
  double mine = start_tag(*clients_[id]);
  for (ClientId j = 0; j < clients_.size(); ++j) {
    if (j == id) continue;
    const Client& peer = *clients_[j];
    if (!peer.active || !peer.backlogged) continue;
    double theirs = start_tag(peer);
    if (theirs < mine || (theirs == mine && j < id)) return true;
  }
  return false;
}

std::optional<simnet::SimTime> SharedBudget::try_acquire(ClientId id,
                                                         simnet::SimTime now) {
  Client& c = *clients_[id];
  simnet::SimTime bank_floor = now - config_.burst_slots * gap_;
  simnet::SimTime slot =
      next_accrual_ > bank_floor ? next_accrual_ : bank_floor;
  if (slot > now) return std::nullopt;  // next token not accrued yet
  if (deferred_to_peer(id)) return std::nullopt;

  double start = start_tag(c);
  // Borrowing: this grant would have lost the arbitration to an idle peer
  // (whose tag re-enters at vtime_) — i.e. it consumes lent capacity
  // beyond the contended fair share.
  bool peer_idle = false;
  for (ClientId j = 0; j < clients_.size(); ++j) {
    if (j == id) continue;
    const Client& peer = *clients_[j];
    if (!peer.active || peer.backlogged) continue;
    double theirs = start_tag(peer);
    if (theirs < start || (theirs == start && j < id)) peer_idle = true;
  }

  frac_acc_ += frac_step_;
  next_accrual_ =
      slot + gap_ + static_cast<simnet::SimDuration>(frac_acc_ >> 32);
  frac_acc_ &= 0xffffffffULL;
  vtime_ = start;
  c.finish = start + 1.0 / c.weight;
  c.grants.inc();
  if (peer_idle) c.borrowed.inc();
  if (c.wanted_since >= 0) {
    c.reclaim.record(now - c.wanted_since);
    c.wanted_since = -1;
  }
  if (on_grant_) on_grant_(id, slot, now);
  return slot;
}

simnet::SimTime SharedBudget::next_slot(ClientId id, simnet::SimTime now) const {
  simnet::SimTime bank_floor = now - config_.burst_slots * gap_;
  simnet::SimTime accrue =
      next_accrual_ > bank_floor ? next_accrual_ : bank_floor;
  simnet::SimTime at = accrue > now ? accrue : now;
  // Deferred to a peer: its grant(s) advance the virtual time; retry one
  // gap later (the peer is backlogged, hence armed and consuming).
  if (deferred_to_peer(id)) at += gap_;
  return at;
}

simnet::SimTime SharedBudget::suggested_wake(ClientId id,
                                             simnet::SimTime now) const {
  simnet::SimTime at = next_slot(id, now);
  for (ClientId j = 0; j < clients_.size(); ++j) {
    if (j == id) continue;
    const Client& peer = *clients_[j];
    if (peer.active && peer.backlogged) return at;  // contended: no slack
  }
  // Uncontended: oversleep by the bank and launch the batch in one wake.
  return at + config_.burst_slots * gap_;
}

void SharedBudget::wake_waiting_peers(ClientId except) {
  for (ClientId j = 0; j < clients_.size(); ++j) {
    if (j == except) continue;
    Client& peer = *clients_[j];
    if (peer.active && peer.backlogged && peer.wake) peer.wake();
  }
}

}  // namespace tts::scan
