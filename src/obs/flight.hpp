// Anomaly flight recorder: a bounded ring of typed events that subsystems
// append to cheaply (no strings, no allocation on the hot path once notes
// are interned) and that dumps itself when something anomalous happens —
// a breaker opening, a burst of fault injections, a dispatch blowing its
// wall-time threshold — or on demand from the Study.
//
// Events carry both clocks: the sim timestamp is read from the attached
// EventQueue; the wall timestamp comes from a caller-installed clock
// function (obs::Tracer::wall_clock_ns), so this file never reads ambient
// time itself and stays off the ttslint wall-clock allowlist. Wall values
// are observational only — dump() excludes them, so same-seed dumps are
// bit-identical.
//
// Dumps are rate-limited in sim time and bounded in count; each is a
// rendered snapshot of the ring tail at trigger time, kept alongside its
// reason so a post-run report (or a test) can ask "what was the system
// doing just before the breaker opened?".
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "simnet/time.hpp"

namespace tts::simnet {
class EventQueue;
}

namespace tts::obs {

enum class FlightKind : std::uint8_t {
  kBreakerOpen,
  kBreakerHalfOpen,
  kBreakerClose,
  kBreakerShed,
  kFaultInjected,
  kSlowDispatch,
  kRetryStaged,
  kRetryDropped,
  kNote,
  /// A scripted fault rule/outage window opened or closed (detail names
  /// the kind, a = the rule/outage index, b = its prefix/host hi64).
  kFaultWindowOpen,
  kFaultWindowClose,
  /// A RoutePlane transition committed at a barrier (a/b = the prefix
  /// address halves); bursts of withdrawals feed the route-flap trigger.
  kRouteWithdrawn,
  kRouteAnnounced,
};
inline constexpr std::size_t kFlightKindCount = 13;

std::string_view to_string(FlightKind kind);

struct FlightEvent {
  simnet::SimTime sim = 0;
  /// Wall timestamp (ns) when a wall clock is installed; 0 otherwise.
  /// Observational only — never rendered into dump().
  std::int64_t wall_ns = 0;
  /// Causal trace the event belongs to (0 = none); links the recorder to
  /// the Tracer's probe-lifecycle spans.
  std::uint64_t trace = 0;
  /// Kind-specific payload (e.g. breaker prefix halves, dispatch wall ns).
  std::int64_t a = 0;
  std::int64_t b = 0;
  FlightKind kind = FlightKind::kNote;
  /// Interned detail string (FlightRecorder::note), 0 = none.
  std::uint32_t detail = 0;
};

class FlightRecorder {
 public:
  using NoteId = std::uint32_t;
  using WallClockFn = std::int64_t (*)();
  using DumpFn =
      std::function<void(std::string_view reason, const std::string& dump)>;

  explicit FlightRecorder(std::size_t capacity = 2048);

  /// Sim-time source; without one, events record sim time 0.
  void set_sim_clock(const simnet::EventQueue* events) { events_ = events; }
  /// Wall-time source (e.g. &Tracer::wall_clock_ns); without one, events
  /// record wall_ns 0 unless the caller supplies a measured value.
  void set_wall_clock(WallClockFn fn) { wall_clock_ = fn; }
  /// A disabled recorder's record()/trigger() are no-ops.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Intern a detail string once (idempotent); id 0 is the empty string.
  NoteId note(std::string_view text);
  const std::string& note_text(NoteId id) const { return notes_[id]; }

  /// Append one event. `wall_ns` 0 means "stamp from the installed wall
  /// clock"; callers that already measured wall time (the dispatch
  /// profiler) pass their measurement instead.
  void record(FlightKind kind, NoteId detail = 0, std::uint64_t trace = 0,
              std::int64_t a = 0, std::int64_t b = 0,
              std::int64_t wall_ns = 0);

  /// Auto-dump when `burst` events of `kind` land within `window` of sim
  /// time (e.g. 64 fault injections within one virtual second).
  void add_trigger(FlightKind kind, std::uint32_t burst,
                   simnet::SimDuration window, std::string reason);
  /// Minimum sim time between dumps (repeated triggers inside the gap are
  /// counted in suppressed(), not dumped again).
  void set_min_dump_gap(simnet::SimDuration gap) { min_dump_gap_ = gap; }
  void set_max_dumps(std::size_t n) { max_dumps_ = n; }
  /// Optional sink invoked on every dump (in addition to dumps() storage).
  void set_dump_sink(DumpFn fn) { sink_ = std::move(fn); }

  /// Dump now (rate-limited like an automatic trigger).
  void trigger(std::string_view reason);

  /// Ring contents, oldest first.
  std::vector<FlightEvent> events() const;
  /// Rendered table of the newest `max_events` ring events (sim clock
  /// only — bit-identical across same-seed runs).
  std::string dump(std::size_t max_events = 64) const;

  std::uint64_t recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recorded_;
  }
  std::uint64_t overwritten() const {
    std::lock_guard<std::mutex> lock(mu_);
    return overwritten_;
  }
  std::uint64_t triggers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return triggers_;
  }
  std::uint64_t suppressed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return suppressed_;
  }
  /// (reason, rendered dump) pairs, oldest first, capped at max_dumps.
  /// Returns a reference into the recorder: read only once appends have
  /// quiesced (post-run, or from a barrier commit).
  // ttslint: barrier_only
  const std::vector<std::pair<std::string, std::string>>& dumps() const {
    return dumps_;
  }

 private:
  struct TriggerRule {
    FlightKind kind;
    std::uint32_t burst;
    simnet::SimDuration window;
    std::string reason;
    /// Circular buffer of the last `burst` matching sim times.
    std::vector<simnet::SimTime> recent;
    std::size_t next = 0;
    std::uint64_t seen = 0;
  };

  simnet::SimTime sim_now() const;
  void trigger_locked(std::string_view reason);
  std::vector<FlightEvent> events_locked() const;
  std::string dump_locked(std::size_t max_events) const;

  /// Guards every mutable member below: sharded runs append from
  /// concurrent shard executors (fault injections, slow dispatches).
  mutable std::mutex mu_;
  const simnet::EventQueue* events_ = nullptr;
  WallClockFn wall_clock_ = nullptr;
  bool enabled_ = true;
  std::size_t capacity_;
  std::vector<FlightEvent> ring_;
  std::size_t ring_next_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
  std::vector<std::string> notes_;
  std::vector<TriggerRule> rules_;
  simnet::SimDuration min_dump_gap_ = simnet::minutes(1);
  simnet::SimTime last_dump_at_ = -1;
  std::size_t max_dumps_ = 8;
  std::uint64_t triggers_ = 0;
  std::uint64_t suppressed_ = 0;
  std::vector<std::pair<std::string, std::string>> dumps_;
  DumpFn sink_;
};

}  // namespace tts::obs
