#include "ntp/collector.hpp"

namespace tts::ntp {

bool AddressCollector::record(const net::Ipv6Address& addr, ServerId server,
                              simnet::SimTime at) {
  ++total_requests_;
  auto [it, inserted] = addresses_.insert(addr);
  if (!inserted) return false;
  ++per_server_[server];
  ++daily_new_[at / simnet::days(1)];
  CollectedAddress rec{addr, server, at};
  for (const auto& fn : subscribers_) fn(rec);
  return true;
}

std::uint64_t AddressCollector::server_distinct(ServerId server) const {
  auto it = per_server_.find(server);
  return it == per_server_.end() ? 0 : it->second;
}

std::vector<net::Ipv6Address> AddressCollector::snapshot() const {
  return std::vector<net::Ipv6Address>(addresses_.begin(), addresses_.end());
}

}  // namespace tts::ntp
