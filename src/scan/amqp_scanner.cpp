// AMQP(S) access-control probe: protocol header, then Start-Ok with the
// default guest credentials. Tune back = broker open; Close 403 = access
// control enforced (Figure 3's AMQP panel).
#include "proto/amqp.hpp"
#include "scan/probe_util.hpp"
#include "scan/tls.hpp"

namespace tts::scan {

namespace {

using detail::ProbeStatePtr;
using simnet::TcpConnection;

class AmqpScanner final : public ProtocolScanner {
 public:
  AmqpScanner(bool tls, std::string sni) : tls_(tls), sni_(std::move(sni)) {}

  Protocol protocol() const override {
    return tls_ ? Protocol::kAmqps : Protocol::kAmqp;
  }

  void probe(simnet::Network& network, const simnet::Endpoint& src,
             ScanRecord base, DoneFn done) override {
    auto state = detail::make_probe_state(std::move(base), std::move(done));
    detail::arm_guard(network, state, probe_timeout_);

    simnet::Endpoint dst{state->record.target, port_of(protocol())};
    bool tls = tls_;
    std::string sni = sni_;
    network.connect_tcp(
        src, dst,
        [state, tls, sni](simnet::TcpConnectionPtr conn, bool refused) {
          if (!conn) {
            state->finish(refused ? Outcome::kRefused : Outcome::kTimeout);
            return;
          }
          state->conn = conn;
          conn->set_on_close(TcpConnection::Side::kClient, [state] {
            if (!state->finished) state->finish(Outcome::kMalformed);
          });

          // The send path differs for TLS vs plain; unify behind lambdas.
          auto on_frame = [state](std::span<const std::uint8_t> wire,
                                  auto send_fn) {
            auto frame = proto::AmqpFrame::parse(wire);
            if (!frame) {
              state->finish(Outcome::kMalformed);
              return;
            }
            switch (frame->method) {
              case proto::AmqpMethod::kStart: {
                proto::AmqpFrame start_ok;
                start_ok.method = proto::AmqpMethod::kStartOk;
                start_ok.text = "PLAIN guest guest";
                send_fn(start_ok.serialize());
                return;
              }
              case proto::AmqpMethod::kTune:
                state->record.broker_auth_required = false;
                state->finish(Outcome::kSuccess);
                return;
              case proto::AmqpMethod::kClose:
                state->record.broker_auth_required =
                    frame->close_code == 403;
                state->finish(Outcome::kSuccess);
                return;
              default:
                state->finish(Outcome::kMalformed);
                return;
            }
          };

          if (!tls) {
            auto send_plain = [conn](std::vector<std::uint8_t> wire) {
              conn->send(TcpConnection::Side::kClient, std::move(wire));
            };
            conn->set_on_data(TcpConnection::Side::kClient,
                              [on_frame, send_plain](
                                  std::vector<std::uint8_t> data) {
                                on_frame(data, send_plain);
                              });
            send_plain(proto::amqp_protocol_header());
            return;
          }

          auto session = TlsClientSession::create(conn, sni);
          auto send_tls = [session](std::vector<std::uint8_t> wire) {
            session->send(std::move(wire));
          };
          session->set_on_app_data(
              [on_frame, send_tls](std::vector<std::uint8_t> data) {
                on_frame(data, send_tls);
              });
          session->handshake(
              [state, session, send_tls](TlsHandshakeResult result) {
                if (!result.ok) {
                  state->finish(Outcome::kTlsFailed);
                  return;
                }
                state->record.certificate = result.certificate;
                send_tls(proto::amqp_protocol_header());
              });
          // Anchors the session to the probe AND breaks the closure
          // cycles (session callbacks capture state) at finish time.
          state->cleanup = [session] { session->drop_callbacks(); };
        },
        connect_timeout_);
  }

 private:
  bool tls_;
  std::string sni_;
};

}  // namespace

std::unique_ptr<ProtocolScanner> make_amqp_scanner(bool tls,
                                                   std::string sni) {
  return std::make_unique<AmqpScanner>(tls, std::move(sni));
}

}  // namespace tts::scan
