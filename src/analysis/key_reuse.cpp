#include "analysis/key_reuse.hpp"

#include <unordered_map>
#include <unordered_set>

#include "util/ordered.hpp"

namespace tts::analysis {

KeyReuseStats http_key_reuse(const scan::ResultStore& results,
                             scan::Dataset dataset,
                             const inet::AsRegistry& registry) {
  struct PerKey {
    std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> ips;
    std::unordered_set<net::AsNumber> ases;
  };
  std::unordered_map<std::uint64_t, PerKey> keys;

  for (const auto* r :
       results.successes(dataset, scan::Protocol::kHttps)) {
    if (!r->certificate || r->http_status != 200) continue;
    auto& entry = keys[r->certificate->fingerprint];
    entry.ips.insert(r->target);
    if (const inet::AsInfo* as = registry.origin(r->target))
      entry.ases.insert(as->number);
  }

  KeyReuseStats stats;
  // Sorted drain: the strict > updates below would otherwise resolve
  // most-used ties in hash order.
  for (const auto* kv : util::sorted_ptrs(keys)) {
    const PerKey& entry = kv->second;
    if (entry.ases.size() <= 2) continue;  // double-homing excused
    ++stats.reused_keys;
    stats.ips_on_reused_keys += entry.ips.size();
    if (entry.ips.size() > stats.most_used_key_ips) {
      stats.most_used_key_ips = entry.ips.size();
      stats.most_used_key_ases = entry.ases.size();
    }
    if (entry.ases.size() > stats.most_widespread_key_ases) {
      stats.most_widespread_key_ases = entry.ases.size();
      stats.most_widespread_key_ips = entry.ips.size();
    }
  }
  return stats;
}

}  // namespace tts::analysis
