// Hitlist source simulators.
//
// The TUM IPv6 Hitlist aggregates DNS-derived names (CT logs, rDNS, zone
// files), traceroute-style topology probing, and target-generation
// algorithms (TGA) extrapolating from seeds. Each simulator reproduces the
// *bias* of its real counterpart: DNS finds content-providing hosts,
// traceroute finds router interfaces with structured IIDs, TGAs stay close
// to their seed space (Section 2.1.1's critique). The aliased CDN region
// contributes the hyperscaler flood that dominates the full-list HTTP scan.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "inet/population.hpp"
#include "net/ipv6.hpp"
#include "util/rng.hpp"

namespace tts::hitlist {

enum class Source : std::uint8_t {
  kDns,         // certificate transparency, rDNS, zone walks
  kTraceroute,  // topology probing: router interfaces
  kTga,         // target generation from seeds
  kAliased,     // addresses inside fully aliased regions
  kStale,       // rotted entries from earlier list generations
};

std::string_view to_string(Source s);

struct SourcedAddress {
  net::Ipv6Address addr;
  Source source = Source::kDns;
};

struct SourceConfig {
  /// Router interface addresses emitted per AS prefix by traceroute.
  int routers_per_prefix = 24;
  /// TGA candidates generated per DNS seed.
  int tga_per_seed = 3;
  /// Addresses sampled from the aliased CDN region.
  std::uint64_t aliased_samples = 4000;
  /// Stale (rotted) entries as a fraction of live DNS finds.
  double stale_fraction = 1.5;
  std::uint64_t seed = 0x417115;
};

/// Resolves a device to the address a source would record for it. The
/// default uses the initial address; hitlists built mid-study resolve the
/// device's *current* address (DNS names track live hosts).
using AddressOf =
    std::function<net::Ipv6Address(const inet::Device&)>;
AddressOf initial_address_of();

/// DNS-based discovery: devices whose names appear in public DNS data.
std::vector<SourcedAddress> dns_source(const inet::Population& pop,
                                       const AddressOf& addr_of =
                                           initial_address_of());

/// Traceroute-style discovery: device WAN interfaces flagged as
/// traceroute-visible plus synthetic router interfaces (structured IIDs)
/// along every announced prefix.
std::vector<SourcedAddress> traceroute_source(const inet::Population& pop,
                                              const SourceConfig& config,
                                              util::Rng& rng,
                                              const AddressOf& addr_of =
                                                  initial_address_of());

/// TGA extrapolation: nearby-IID and adjacent-subnet variants of seeds.
/// Inherits the seeds' bias; some candidates alias onto real neighbours.
std::vector<SourcedAddress> tga_source(
    const std::vector<SourcedAddress>& seeds, const SourceConfig& config,
    util::Rng& rng);

/// Samples from the fully aliased CDN region (every one responds).
std::vector<SourcedAddress> aliased_source(const inet::AsRegistry& registry,
                                           const SourceConfig& config,
                                           util::Rng& rng);

/// Rotted entries: former dynamic addresses that no longer exist.
std::vector<SourcedAddress> stale_source(const inet::Population& pop,
                                         std::size_t live_dns_count,
                                         const SourceConfig& config,
                                         util::Rng& rng);

}  // namespace tts::hitlist
