// Device model catalogue.
//
// Every host in the synthetic Internet is an instance of a DeviceProfile:
// a bundle of addressing behaviour (SLAAC EUI-64 with a vendor MAC, privacy
// extensions, static server addressing, dynamic prefixes), NTP conduct
// (does it poll the pool, how often), exposed services with their security
// configuration (TLS, auth, patch level, key reuse), and discoverability by
// hitlist sources. The catalogue is parameterised from the paper's own
// published distributions, so the scan experiments reproduce the *shape*
// of Tables 2-4 and Figures 1-3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/oui_db.hpp"

namespace tts::inet {

enum class DeviceClass : std::uint8_t {
  // Eyeball CPE & consumer devices
  kFritzBox,
  kFritzRepeater,
  kFritzPowerline,
  kDlinkCpe,
  kCiscoWap,
  kGenericCpe,
  kRaspbianHome,
  kHomeLinuxServer,
  kSmartphone,
  kIotGadget,
  kCastDevice,
  kQlinkWifi,
  kEfentoSensor,
  kNanoleaf,
  kCoapMisc,
  kHomeMqttBroker,
  // Servers & infrastructure
  kUbuntuServer,
  kDebianServer,
  kFreebsdServer,
  kSshApplianceOther,
  k3cxServer,
  kParkingPage,
  kWebHostingServer,
  kCloudMqttBroker,
  kCloudAmqpBroker,
  kCdnLoadBalancer,
};

std::string_view to_string(DeviceClass c);

/// How a device's interface identifier is formed.
enum class IidMode : std::uint8_t {
  kEui64,            // SLAAC from the MAC (vendor or locally administered)
  kPrivacyRandom,    // RFC 4941 temporary addresses
  kStaticZero,       // ::  (prefix with zero IID — routers/gateways)
  kStaticLowByte,    // ::1, ::2e — manually numbered servers
  kStaticLowTwoBytes,// ::1:5 style (last two bytes set)
  kDhcpRandomish,    // DHCPv6 IA_NA — random-looking but stable
};

/// How TLS certificates / SSH host keys are provisioned.
enum class KeyProvisioning : std::uint8_t {
  kUniquePerDevice,  // individually generated at first boot
  kVendorShared,     // one key baked into the firmware image (worst case)
  kSharedPool,       // drawn from a small pool (golden images, containers)
};

struct HttpService {
  double enabled = 0;        // P(exposes HTTP/HTTPS at all)
  double tls = 0;            // P(HTTPS offered | enabled)
  int status = 200;
  std::string title;         // "{ip}" is replaced by the scanned address
  std::string server_header = "httpd";
  KeyProvisioning cert = KeyProvisioning::kUniquePerDevice;
  int shared_pool_size = 8;  // for kSharedPool
  bool sni_required = false; // handshake fails without a hostname (CDN)
};

struct SshService {
  double enabled = 0;
  /// OS token in the version banner: "Ubuntu", "Debian", "Raspbian",
  /// "FreeBSD", or "" for banners without an OS hint ("other/unknown").
  std::string os;
  double outdated = 0;       // P(not running the latest patch level)
  KeyProvisioning key = KeyProvisioning::kUniquePerDevice;
  int shared_pool_size = 8;
};

struct BrokerService {       // MQTT or AMQP
  double enabled = 0;
  double tls = 0;            // P(TLS port also offered | enabled)
  double auth = 0;           // P(access control enforced)
  KeyProvisioning cert = KeyProvisioning::kUniquePerDevice;
  int shared_pool_size = 4;
};

struct CoapService {
  double enabled = 0;
  /// Advertised resource paths returned for /.well-known/core.
  std::vector<std::string> resources;
};

struct NtpConduct {
  double uses_pool = 0;        // P(time source is the NTP Pool)
  double mean_interval_hours = 4.0;  // effective pool re-resolve cadence
};

struct Addressing {
  IidMode iid = IidMode::kPrivacyRandom;
  /// For kEui64: P(vendor-assigned globally unique MAC); otherwise the MAC
  /// is locally administered (randomised).
  double vendor_mac = 0;
  /// Given a vendor MAC: P(the OUI is missing from the IEEE registry).
  double unlisted_oui = 0;
  std::vector<std::uint32_t> ouis;  // candidate vendor OUIs
  double daily_prefix_change = 0;   // ISP prefix rotation probability / day
  double daily_iid_change = 0;      // privacy/MAC-randomisation per day
  int extra_addresses = 0;          // concurrent additional addresses
};

struct Discovery {
  /// P(device appears in DNS-derived hitlist sources: CT logs, rDNS, zones).
  double dns = 0;
  /// P(device appears via traceroute-style discovery — CPE WAN interfaces).
  double traceroute = 0;
};

/// Where instances of this profile live.
enum class Placement : std::uint8_t { kEyeball, kMobile, kHosting, kMixed };

struct DeviceProfile {
  DeviceClass cls{};
  std::string model;      // human-readable instance label
  double weight = 0;      // abundance per country client-weight unit
  Placement placement = Placement::kEyeball;
  /// Per-country multipliers (ISO code -> factor); "EU" applies to the
  /// builtin European country group; unlisted countries use 1.0.
  std::vector<std::pair<std::string, double>> country_mult;

  HttpService http;
  SshService ssh;
  BrokerService mqtt;
  BrokerService amqp;
  CoapService coap;
  NtpConduct ntp;
  Addressing addr;
  Discovery disc;
};

/// The built-in catalogue (see device.cpp for the paper-derived tuning).
const std::vector<DeviceProfile>& device_catalogue();

/// Country-group membership helper ("EU" covers the European codes used by
/// the builtin country table).
bool in_country_group(const std::string& code, const std::string& group);

/// Resolve the catalogue multiplier of `profile` for `country`.
double country_multiplier(const DeviceProfile& profile,
                          const std::string& country);

/// SSH version lineage per OS: index 0 is oldest, back() is the latest
/// patch level. Banners follow the Debian/Ubuntu "OpenSSH_X Debian-N" shape
/// the paper parses for patch levels.
const std::vector<std::string>& ssh_version_lineage(const std::string& os);

/// Full SSH identification string for an OS at a lineage index.
std::string ssh_banner(const std::string& os, std::size_t version_index);

}  // namespace tts::inet
