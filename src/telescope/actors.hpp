// Third-party NTP-sourcing scanners (Section 5.2 ground truth).
//
// A ScanningActor operates its own capture-enabled servers in the NTP Pool
// and port-scans every client address it sees. Two presets reproduce the
// actors the paper observed: an overt research scanner (Georgia-Tech-like:
// 1011 ports, scans within the hour, identifies itself) and a covert actor
// (cloud-hosted servers and scan sources in different providers,
// security-sensitive ports only, multi-day spread, partial port coverage).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/ipv6.hpp"
#include "ntp/collector.hpp"
#include "ntp/ntp_server.hpp"
#include "ntp/pool.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace tts::telescope {

struct ActorConfig {
  std::string name;
  bool identifies_itself = false;  // rDNS / scan-source web page etc.
  std::vector<net::Ipv6Address> server_addresses;  // pool servers it runs
  std::string server_country = "US";               // pool zone joined
  double server_netspeed = 100;                    // modest footprint
  std::vector<net::Ipv6Address> scan_sources;
  std::vector<std::uint16_t> ports;
  /// Scans start between these bounds after the NTP sighting.
  simnet::SimDuration scan_delay_min = simnet::minutes(5);
  simnet::SimDuration scan_delay_max = simnet::minutes(55);
  /// Port probes of one target are spread over this window.
  simnet::SimDuration scan_spread = simnet::minutes(10);
  /// Fraction of the port list actually probed per target (<1 = covert
  /// partial coverage).
  double port_coverage = 1.0;
  std::uint64_t seed = 0xac7;
};

class ScanningActor {
 public:
  ScanningActor(simnet::Network& network, ntp::NtpPool& pool,
                ActorConfig config);

  const ActorConfig& config() const { return config_; }
  std::uint64_t sightings() const { return collector_.distinct_addresses(); }
  std::uint64_t probes_sent() const { return probes_sent_; }

  /// True if `addr` is one of this actor's scan sources (ground-truth
  /// attribution for validating the classifier).
  bool owns_scan_source(const net::Ipv6Address& addr) const;

 private:
  void on_sighting(const ntp::CollectedAddress& rec);

  simnet::Network& network_;
  ActorConfig config_;
  util::Rng rng_;
  simnet::EventQueue::CategoryId category_;
  ntp::AddressCollector collector_;
  std::vector<std::unique_ptr<ntp::NtpServer>> servers_;
  std::uint64_t probes_sent_ = 0;
};

/// The 1011-port list of the research actor (a realistic well-known +
/// registered mix: FTP, SSH, BGP, Postgres, ...).
std::vector<std::uint16_t> research_actor_ports();

/// The covert actor's port set from the paper: HTTPS, remote graphical
/// access, Elasticsearch, MongoDB.
std::vector<std::uint16_t> covert_actor_ports();

}  // namespace tts::telescope
