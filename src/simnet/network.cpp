#include "simnet/network.hpp"

#include <algorithm>
#include <cassert>

namespace tts::simnet {

// ---------------------------------------------------------------- TcpConnection

TcpConnection::TcpConnection(Network* net, Endpoint client, Endpoint server,
                             SimDuration latency, DomainId client_dom,
                             DomainId server_dom, bool sharded)
    : net_(net),
      client_(std::move(client)),
      server_(std::move(server)),
      latency_(latency),
      sharded_(sharded) {
  dom_[0] = client_dom;
  dom_[1] = server_dom;
}

void TcpConnection::set_on_data(Side side, DataFn fn) {
  on_data_[static_cast<int>(side)] = std::move(fn);
}

void TcpConnection::set_on_close(Side side, CloseFn fn) {
  on_close_[static_cast<int>(side)] = std::move(fn);
}

void TcpConnection::send(Side from, std::vector<std::uint8_t> data) {
  int f = static_cast<int>(from);
  if (!open_[sharded_ ? f : 0]) return;
  if (stalled_) {
    // Fault-injected stall: the connection looks established, but payload
    // bytes silently vanish in both directions (counted by the plane).
    if (net_->fault_) net_->fault_->note_stalled_data();
    return;
  }
  int to = 1 - f;
  auto self = shared_from_this();
  // Data queued before a close is still delivered (TCP flushes the send
  // buffer before the FIN); the close notification is scheduled after it.
  net_->events_.schedule_on(
      dom_[to], net_->events_.now() + latency_, net_->packet_cat_,
      [self, to, data = std::move(data)]() mutable {
        if (self->on_data_[to]) self->on_data_[to](std::move(data));
      });
}

void TcpConnection::close(Side from) {
  int f = static_cast<int>(from);
  if (!open_[sharded_ ? f : 0]) return;
  open_[sharded_ ? f : 0] = false;
  auto self = shared_from_this();
  SimTime deliver_at = net_->events_.now() + latency_;
  if (stalled_) {
    // The FIN is swallowed like everything else: the peer never hears the
    // close. Still break the handler capture cycles (deferred one latency
    // so a close from inside a callback never drops the running closure's
    // own captures out from under it). Sharded: each side's handlers drop
    // on that side's own domain.
    if (sharded_) {
      net_->events_.schedule_on(dom_[f], deliver_at, net_->packet_cat_,
                                [self, f] { self->drop_side(f); });
    } else {
      net_->events_.schedule_on(0, deliver_at, net_->packet_cat_,
                                [self] { self->drop_handlers(); });
    }
    return;
  }
  int to = 1 - f;
  if (!sharded_) {
    net_->events_.schedule_on(0, deliver_at, net_->packet_cat_, [self, to] {
      // Move the peer's close handler out, then drop every handler before
      // invoking it: the handlers routinely capture the connection pointer,
      // and clearing them here breaks the shared_ptr cycle the moment the
      // close delivers. Data queued before the close was scheduled earlier
      // on the same event queue, so it has already been delivered.
      CloseFn fn = std::move(self->on_close_[to]);
      self->drop_handlers();
      if (fn) fn();
    });
    return;
  }
  // Sharded: the FIN hops to the peer's domain; this side's own handlers
  // drop via a same-domain event at the same instant.
  net_->events_.schedule_on(dom_[to], deliver_at, net_->packet_cat_,
                            [self, to] {
                              self->open_[to] = false;
                              CloseFn fn = std::move(self->on_close_[to]);
                              self->drop_side(to);
                              if (fn) fn();
                            });
  net_->events_.schedule_on(dom_[f], deliver_at, net_->packet_cat_,
                            [self, f] { self->drop_side(f); });
}

void TcpConnection::drop_handlers() {
  for (auto& fn : on_data_) fn = nullptr;
  for (auto& fn : on_close_) fn = nullptr;
}

void TcpConnection::drop_side(int side) {
  on_data_[side] = nullptr;
  on_close_[side] = nullptr;
}

// --------------------------------------------------------------------- Network

Network::Network(EventQueue& events, NetworkConfig config)
    : events_(events),
      config_(config),
      packet_cat_(events.register_category("packet")) {
  rngs_.emplace_back(config.seed);
}

Network::~Network() {
  // Connections that never closed (in-flight probes at the simulation
  // horizon) still hold user callbacks capturing their own shared_ptr;
  // break those cycles so nothing outlives the teardown.
  for (const auto& weak : live_tcp_)
    if (auto conn = weak.lock()) conn->drop_handlers();
}

void Network::set_shard_map(const ShardMap* map) {
  map_ = map;
  if (!map_) return;
  util::Rng root(config_.seed);
  for (DomainId d = static_cast<DomainId>(rngs_.size());
       d < map_->domain_count(); ++d)
    rngs_.push_back(root.stream("net-domain").stream(d));
  if (fault_) fault_->configure_domains(map_->domain_count());
}

util::Rng& Network::domain_rng() {
  DomainId d = events_.current_domain();
  return rngs_[d < rngs_.size() ? d : 0];
}

void Network::attach(const net::Ipv6Address& addr) {
  std::lock_guard<std::mutex> lk(maps_mu_);  // ttslint: allow(thread-confine) reason=maps_mu_ protocol: binding-table structure is touched from every domain
  ++online_[addr];
}

void Network::detach(const net::Ipv6Address& addr) {
  std::lock_guard<std::mutex> lk(maps_mu_);  // ttslint: allow(thread-confine) reason=maps_mu_ protocol: binding-table structure is touched from every domain
  auto it = online_.find(addr);
  if (it == online_.end()) return;
  if (--it->second > 0) return;
  online_.erase(it);
  // Drop every binding on this address.
  // ttslint: allow(unordered-iter) reason=erase-only sweep; which bindings remain does not depend on visit order
  for (auto b = udp_.begin(); b != udp_.end();) {
    if (b->first.addr == addr)
      b = udp_.erase(b);
    else
      ++b;
  }
  // ttslint: allow(unordered-iter) reason=erase-only sweep; which bindings remain does not depend on visit order
  for (auto b = tcp_.begin(); b != tcp_.end();) {
    if (b->first.addr == addr)
      b = tcp_.erase(b);
    else
      ++b;
  }
}

bool Network::online(const net::Ipv6Address& addr) const {
  std::lock_guard<std::mutex> lk(maps_mu_);  // ttslint: allow(thread-confine) reason=maps_mu_ protocol: binding-table structure is touched from every domain
  return online_.contains(addr);
}

std::size_t Network::online_count() const {
  std::lock_guard<std::mutex> lk(maps_mu_);  // ttslint: allow(thread-confine) reason=maps_mu_ protocol: binding-table structure is touched from every domain
  return online_.size();
}

SimDuration Network::base_latency(const net::Ipv6Address& a,
                                  const net::Ipv6Address& b) const {
  // Deterministic symmetric function of the unordered pair.
  std::uint64_t ha = a.hi64() ^ (a.lo64() * 0x9e3779b97f4a7c15ULL);
  std::uint64_t hb = b.hi64() ^ (b.lo64() * 0x9e3779b97f4a7c15ULL);
  std::uint64_t mixed = (ha ^ hb) * 0xbf58476d1ce4e5b9ULL;
  mixed ^= mixed >> 31;
  SimDuration span = config_.max_latency - config_.min_latency;
  if (span <= 0) return config_.min_latency;
  return config_.min_latency +
         static_cast<SimDuration>(mixed % static_cast<std::uint64_t>(span));
}

SimDuration Network::sample_latency(const net::Ipv6Address& a,
                                    const net::Ipv6Address& b,
                                    util::Rng& rng) {
  SimDuration lat = base_latency(a, b);
  if (config_.jitter > 0)
    lat += static_cast<SimDuration>(
        rng.below(static_cast<std::uint64_t>(config_.jitter)));
  return lat;
}

void Network::run_taps(TransportProto proto, const Endpoint& src,
                       const Endpoint& dst, std::size_t payload_size) {
  if (taps_.empty()) return;
  TapEvent ev{events_.now(), proto, src, dst, payload_size};
  for (const auto& tap : taps_)
    if (tap.prefix.contains(dst.addr)) tap.fn(ev);
}

void Network::bind_udp(const Endpoint& ep, UdpHandler handler) {
  std::lock_guard<std::mutex> lk(maps_mu_);  // ttslint: allow(thread-confine) reason=maps_mu_ protocol: binding-table structure is touched from every domain
  udp_[ep] = std::move(handler);
}

void Network::unbind_udp(const Endpoint& ep) {
  std::lock_guard<std::mutex> lk(maps_mu_);  // ttslint: allow(thread-confine) reason=maps_mu_ protocol: binding-table structure is touched from every domain
  udp_.erase(ep);
}

void Network::send_udp(const Endpoint& src, const Endpoint& dst,
                       std::vector<std::uint8_t> payload) {
  udp_sent_.fetch_add(1, std::memory_order_relaxed);
  run_taps(TransportProto::kUdp, src, dst, payload.size());
  const SimTime now = events_.now();
  // Reachability before impairment (route -> outage -> rules): a datagram
  // into withdrawn space vanishes before any stochastic draw, so the
  // RNG stream is untouched and route-plane-off runs draw identically.
  if (route_ && route_->blackholes(dst.addr, now)) return;
  util::Rng& rng = domain_rng();
  if (config_.loss_rate > 0.0 && rng.chance(config_.loss_rate)) return;
  SimDuration lat = sample_latency(src.addr, dst.addr, rng);
  if (fault_) {
    FaultPlane::UdpVerdict verdict = fault_->on_udp(
        src.addr, dst.addr, dst.port, now, events_.current_domain());
    if (verdict.drop) return;
    lat += verdict.extra_latency;
  }
  DomainId dst_dom = map_ ? map_->domain_of(dst.addr) : 0;
  events_.schedule_on(
      dst_dom, now + lat, packet_cat_,
      [this, src, dst, payload = std::move(payload)] {
        UdpHandler handler;
        {
          std::lock_guard<std::mutex> lk(maps_mu_);  // ttslint: allow(thread-confine) reason=maps_mu_ protocol: binding-table structure is touched from every domain
          auto it = udp_.find(dst);
          // Copy the handler: it may unbind itself while running.
          if (it != udp_.end()) handler = it->second;
        }
        if (!handler) {
          // No exact binding: try wildcard prefix bindings (aliased
          // regions); otherwise blackholed or refused — UDP stays silent.
          for (const auto& p : prefix_udp_) {
            if (p.port == dst.port && p.prefix.contains(dst.addr)) {
              handler = p.handler;
              break;
            }
          }
          if (!handler) return;
        }
        udp_delivered_.fetch_add(1, std::memory_order_relaxed);
        handler(Datagram{src, dst, payload});
      });
}

void Network::listen_tcp(const Endpoint& ep, TcpAcceptor acceptor) {
  std::lock_guard<std::mutex> lk(maps_mu_);  // ttslint: allow(thread-confine) reason=maps_mu_ protocol: binding-table structure is touched from every domain
  tcp_[ep] = std::move(acceptor);
}

void Network::unlisten_tcp(const Endpoint& ep) {
  std::lock_guard<std::mutex> lk(maps_mu_);  // ttslint: allow(thread-confine) reason=maps_mu_ protocol: binding-table structure is touched from every domain
  tcp_.erase(ep);
}

void Network::connect_tcp(const Endpoint& src, const Endpoint& dst,
                          ConnectResult result,
                          std::optional<SimDuration> connect_timeout) {
  tcp_attempts_.fetch_add(1, std::memory_order_relaxed);
  run_taps(TransportProto::kTcp, src, dst, 0);

  SimDuration timeout = connect_timeout.value_or(config_.connect_timeout);
  const SimTime now = events_.now();
  // Reachability before impairment: a SYN into withdrawn space times out
  // exactly like a blackhole, before any stochastic draw.
  if (route_ && route_->blackholes(dst.addr, now)) {
    events_.schedule_in(timeout, packet_cat_,
                        [result] { result(nullptr, /*refused=*/false); });
    return;
  }
  util::Rng& rng = domain_rng();
  SimDuration lat = sample_latency(src.addr, dst.addr, rng);
  FaultPlane::TcpVerdict verdict;
  if (fault_) {
    verdict = fault_->on_tcp_connect(src.addr, dst.addr, dst.port, now,
                                     events_.current_domain());
    lat += verdict.extra_latency;
    if (verdict.action == FaultPlane::TcpAction::kBlackhole) {
      events_.schedule_in(timeout, packet_cat_,
                          [result] { result(nullptr, /*refused=*/false); });
      return;
    }
    if (verdict.action == FaultPlane::TcpAction::kRst) {
      events_.schedule_in(2 * lat, packet_cat_,
                          [result] { result(nullptr, /*refused=*/true); });
      return;
    }
  }
  bool stalled = verdict.action == FaultPlane::TcpAction::kStall;
  if (map_) {
    connect_tcp_sharded(src, dst, std::move(result), timeout, lat, stalled);
    return;
  }

  bool host_online = online(dst.addr);
  TcpAcceptor acceptor;
  {
    std::lock_guard<std::mutex> lk(maps_mu_);  // ttslint: allow(thread-confine) reason=maps_mu_ protocol: binding-table structure is touched from every domain
    auto listener = tcp_.find(dst);
    if (listener != tcp_.end()) acceptor = listener->second;
  }
  if (!acceptor) {
    for (const auto& p : prefix_tcp_) {
      if (p.port == dst.port && p.prefix.contains(dst.addr)) {
        acceptor = p.acceptor;
        host_online = true;
        break;
      }
    }
  }

  if (!host_online) {
    // Blackhole: the connect attempt times out.
    events_.schedule_in(timeout, packet_cat_,
                        [result] { result(nullptr, /*refused=*/false); });
    return;
  }
  if (!acceptor) {
    // RST after one RTT.
    events_.schedule_in(2 * lat, packet_cat_,
                        [result] { result(nullptr, /*refused=*/true); });
    return;
  }

  tcp_established_.fetch_add(1, std::memory_order_relaxed);
  events_.schedule_in(2 * lat, packet_cat_,
                      [this, src, dst, lat, stalled, result, acceptor] {
    auto conn = TcpConnectionPtr(new TcpConnection(
        this, src, dst, lat, /*client_dom=*/0, /*server_dom=*/0,
        /*sharded=*/false));
    conn->stalled_ = stalled;
    track_connection(conn);
    // Server learns of the connection first (it must install handlers
    // before any client data can arrive — data takes >= lat anyway).
    acceptor(conn);
    result(conn, false);
  });
}

void Network::connect_tcp_sharded(const Endpoint& src, const Endpoint& dst,
                                  ConnectResult result, SimDuration timeout,
                                  SimDuration lat, bool stalled) {
  // SYN-arrival model: the destination's online/listener state belongs to
  // the destination's domain, so the lookups run there — one latency after
  // the send — and the outcome hops back to the caller's domain.
  DomainId caller_dom = events_.current_domain();
  DomainId server_dom = map_->domain_of(dst.addr);
  SimTime send_at = events_.now();
  events_.schedule_on(
      server_dom, send_at + lat, packet_cat_,
      [this, src, dst, lat, stalled, timeout, caller_dom, server_dom,
       send_at, result = std::move(result)] {
        bool host_online;
        TcpAcceptor acceptor;
        {
          std::lock_guard<std::mutex> lk(maps_mu_);  // ttslint: allow(thread-confine) reason=maps_mu_ protocol: binding-table structure is touched from every domain
          host_online = online_.contains(dst.addr);
          auto listener = tcp_.find(dst);
          if (listener != tcp_.end()) acceptor = listener->second;
        }
        if (!acceptor) {
          for (const auto& p : prefix_tcp_) {
            if (p.port == dst.port && p.prefix.contains(dst.addr)) {
              acceptor = p.acceptor;
              host_online = true;
              break;
            }
          }
        }
        if (!host_online) {
          events_.schedule_on(caller_dom, send_at + timeout, packet_cat_,
                              [result] { result(nullptr, false); });
          return;
        }
        if (!acceptor) {
          events_.schedule_on(caller_dom, send_at + 2 * lat, packet_cat_,
                              [result] { result(nullptr, true); });
          return;
        }
        tcp_established_.fetch_add(1, std::memory_order_relaxed);
        auto conn = TcpConnectionPtr(new TcpConnection(
            this, src, dst, lat, caller_dom, server_dom, /*sharded=*/true));
        conn->stalled_ = stalled;
        track_connection(conn);
        // Server side accepts at SYN arrival; the client's result fires a
        // further latency later (the SYN-ACK), preserving the
        // acceptor-before-result ordering across domains.
        acceptor(conn);
        events_.schedule_on(caller_dom, send_at + 2 * lat, packet_cat_,
                            [conn, result] { result(conn, false); });
      });
}

void Network::install_faults(FaultScenario scenario, obs::Registry* registry,
                             obs::FlightRecorder* flight) {
  fault_ = std::make_unique<FaultPlane>(std::move(scenario), registry);
  if (flight) {
    fault_->set_flight_recorder(flight);
    fault_->arm_windows(events_);
  }
  if (map_) fault_->configure_domains(map_->domain_count());
}

void Network::install_routes(RouteScenario scenario, obs::Registry* registry,
                             obs::FlightRecorder* flight) {
  // Install-once: arming schedules transition events capturing the plane,
  // so a replacement would dangle them.
  assert(!route_ && "route plane may only be installed once");
  route_ = std::make_unique<RoutePlane>(std::move(scenario), registry);
  if (flight) route_->set_flight_recorder(flight);
  for (auto& fn : route_subs_) route_->subscribe(std::move(fn));
  route_subs_.clear();
  route_->arm(events_);
}

void Network::subscribe_routes(RoutePlane::TransitionFn fn) {
  if (route_)
    route_->subscribe(std::move(fn));
  else
    route_subs_.push_back(std::move(fn));
}

void Network::track_connection(const TcpConnectionPtr& conn) {
  std::lock_guard<std::mutex> lk(live_mu_);  // ttslint: allow(thread-confine) reason=live_mu_ protocol: connections register from any domain for ~Network teardown
  if (live_tcp_.size() >= live_tcp_prune_at_) {
    std::erase_if(live_tcp_,
                  [](const std::weak_ptr<TcpConnection>& w) {
                    return w.expired();
                  });
    live_tcp_prune_at_ = std::max<std::size_t>(64, 2 * live_tcp_.size());
  }
  live_tcp_.push_back(conn);
}

void Network::listen_tcp_prefix(const net::Ipv6Prefix& prefix,
                                std::uint16_t port, TcpAcceptor acceptor) {
  prefix_tcp_.push_back(PrefixTcp{prefix, port, std::move(acceptor)});
}

void Network::bind_udp_prefix(const net::Ipv6Prefix& prefix,
                              std::uint16_t port, UdpHandler handler) {
  prefix_udp_.push_back(PrefixUdp{prefix, port, std::move(handler)});
}

std::uint64_t Network::add_tap(const net::Ipv6Prefix& prefix, TapFn fn) {
  std::uint64_t id = next_tap_id_++;
  taps_.push_back(Tap{id, prefix, std::move(fn)});
  return id;
}

void Network::remove_tap(std::uint64_t id) {
  for (auto it = taps_.begin(); it != taps_.end(); ++it) {
    if (it->id == id) {
      taps_.erase(it);
      return;
    }
  }
}

}  // namespace tts::simnet
