// Telescope prober (Section 5.1): continuously query NTP Pool servers,
// each time from a previously unused source address inside a dedicated
// prefix, and capture all traffic arriving in that prefix (plus the
// surrounding space, to spot NTP-unrelated scanning that lands there by
// chance). A scan packet to an address we only ever used for one NTP query
// can be attributed to the server that saw the query.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ipv6.hpp"
#include "ntp/client.hpp"
#include "ntp/pool.hpp"
#include "obs/metrics.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace tts::telescope {

struct ProbeRecord {
  net::Ipv6Address source;       // the one-shot source address
  net::Ipv6Address server;       // pool server queried
  simnet::SimTime queried_at = 0;
  bool answered = false;
};

struct CapturedPacket {
  simnet::SimTime at = 0;
  simnet::TransportProto proto = simnet::TransportProto::kTcp;
  net::Ipv6Address scanner;      // packet source
  std::uint16_t scanner_port = 0;
  net::Ipv6Address target;       // inside our telescope prefix
  std::uint16_t port = 0;
  bool in_probe_prefix = false;  // false = surrounding space (scattering)
};

struct ProberConfig {
  /// Addresses used for queries come from this prefix...
  net::Ipv6Prefix probe_prefix;
  /// ...while this wider prefix is monitored for scattering.
  net::Ipv6Prefix monitor_prefix;
  simnet::SimDuration query_interval = simnet::minutes(20);
  simnet::SimDuration duration = simnet::days(28);
  std::uint64_t seed = 0x7e1e;
  /// Export query/capture counters ("telescope_*"); must outlive the
  /// prober. Optional.
  obs::Registry* registry = nullptr;
};

class PoolProber {
 public:
  PoolProber(simnet::Network& network, const ntp::NtpPool& pool,
             ProberConfig config);
  ~PoolProber();

  PoolProber(const PoolProber&) = delete;
  PoolProber& operator=(const PoolProber&) = delete;

  void start();

  const std::vector<ProbeRecord>& probes() const { return probes_; }
  const std::vector<CapturedPacket>& captures() const { return captures_; }

  /// Probe record for a source address, if any (the attribution step).
  const ProbeRecord* probe_for(const net::Ipv6Address& source) const;

  double answered_share() const;

  std::uint64_t queries_sent() const { return queries_.value(); }
  std::uint64_t queries_answered() const { return answered_.value(); }
  std::uint64_t captured_packets() const { return captured_.value(); }
  /// Captures outside the probe prefix (the scattering share).
  std::uint64_t captured_scattering() const { return scattering_.value(); }

 private:
  void schedule_next();
  void run_query();
  net::Ipv6Address next_source();

  simnet::Network& network_;
  const ntp::NtpPool& pool_;
  ProberConfig config_;
  util::Rng rng_;
  ntp::NtpClient client_;
  simnet::EventQueue::CategoryId category_;

  std::vector<ProbeRecord> probes_;
  std::unordered_map<net::Ipv6Address, std::size_t, net::Ipv6AddressHash>
      by_source_;
  std::vector<CapturedPacket> captures_;
  std::uint64_t next_iid_ = 1;
  std::size_t next_server_ = 0;
  std::uint64_t tap_id_ = 0;
  bool started_ = false;

  obs::Counter queries_;
  obs::Counter answered_;
  obs::Counter captured_;
  obs::Counter scattering_;
};

}  // namespace tts::telescope
