// Causal probe-lifecycle tracing end to end: TraceId threading through
// stage -> grant -> launch -> retry -> record, the Chrome trace-event
// export (bit-identical for same-seed studies), and the anomaly flight
// recorder's breaker-open dump.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "scan/engine.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/fault.hpp"
#include "simnet/network.hpp"

namespace tts {
namespace {

constexpr std::uint64_t kNetA = 0x20010db800010000ULL;
constexpr std::uint64_t kNetB = 0x20010db900010000ULL;

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_halves(hi, lo);
}

scan::ScanEngineConfig fast_config() {
  scan::ScanEngineConfig c;
  c.scanner_address = addr(kNetB, 0xbeef);
  c.min_protocol_delay = simnet::usec(10);
  c.max_protocol_delay = simnet::usec(20);
  c.max_pps = 100000;
  return c;
}

// ------------------------------------------------ lifecycle trace linking

TEST(ProbeLifecycleTrace, RetriedProbeSpansShareOneTraceAndNest) {
  simnet::EventQueue events;
  simnet::Network network(events);
  scan::ResultStore results;
  obs::Tracer tracer(1024);
  tracer.set_sim_clock(&events);

  auto config = fast_config();
  config.retry.max_retries = 1;
  config.retry.base_backoff = simnet::sec(1);
  config.retry.jitter = 0.0;
  config.tracer = &tracer;
  scan::ScanEngine engine(network, results, config);
  // Offline target: every probe of every attempt times out, so each
  // protocol chain runs stage -> grant -> launch -> timeout -> retry ->
  // stage -> grant -> launch -> timeout -> record.
  engine.submit(addr(kNetA, 1));
  events.run();

  auto records = tracer.records();
  // Pick one retried chain via its retry marker.
  obs::Tracer::TraceId trace = 0;
  for (const auto& r : records)
    if (r.name == "probe/retry") {
      trace = r.trace;
      break;
    }
  ASSERT_NE(trace, 0u);

  std::vector<obs::SpanRecord> chain;
  for (const auto& r : records)
    if (r.trace == trace) chain.push_back(r);

  auto count_named = [&chain](const std::string& name) {
    return std::count_if(chain.begin(), chain.end(),
                         [&name](const obs::SpanRecord& r) {
                           return r.name == name;
                         });
  };
  // Two attempts: two staging spans, two grants, two launches; one retry
  // marker, one final record, one whole-lifecycle span. 9 records total.
  EXPECT_EQ(chain.size(), 9u);
  EXPECT_EQ(count_named("probe/stage"), 2);
  EXPECT_EQ(count_named("probe/grant"), 2);
  EXPECT_EQ(count_named("probe/retry"), 1);
  EXPECT_EQ(count_named("probe/record"), 1);

  const obs::SpanRecord* lifecycle = nullptr;
  int launches = 0;
  for (const auto& r : chain) {
    if (r.name.rfind("target/", 0) == 0) {
      EXPECT_EQ(lifecycle, nullptr) << "one lifecycle span per chain";
      lifecycle = &r;
    }
    if (r.name.rfind("probe/", 0) == 0 && !r.instant &&
        r.name != "probe/stage")
      ++launches;  // probe/<proto> launch spans
  }
  EXPECT_EQ(launches, 2);
  ASSERT_NE(lifecycle, nullptr);
  // The lifecycle span covers every other span/marker of its trace.
  for (const auto& r : chain) {
    EXPECT_GE(r.sim_begin, lifecycle->sim_begin) << r.name;
    EXPECT_LE(r.sim_end, lifecycle->sim_end) << r.name;
  }
  // Both attempts' stage spans closed exactly when their grant fired.
  std::vector<simnet::SimTime> stage_ends, grants;
  for (const auto& r : chain) {
    if (r.name == "probe/stage") stage_ends.push_back(r.sim_end);
    if (r.name == "probe/grant") grants.push_back(r.sim_begin);
  }
  std::sort(stage_ends.begin(), stage_ends.end());
  std::sort(grants.begin(), grants.end());
  EXPECT_EQ(stage_ends, grants);
}

TEST(ProbeLifecycleTrace, TraceIdsAreMintedWithoutATracer) {
  // Trace minting is unconditional (cheap, seed-stable); only span work is
  // gated on the tracer. Without a tracer the engine still runs clean.
  simnet::EventQueue events;
  simnet::Network network(events);
  scan::ResultStore results;
  scan::ScanEngine engine(network, results, fast_config());
  engine.submit(addr(kNetA, 1));
  events.run();
  EXPECT_EQ(engine.probes_completed(), scan::kProtocolCount);
}

// -------------------------------------------------- chrome trace export

std::string run_tiny_study_trace(std::uint64_t seed) {
  auto config = core::make_study_config(core::StudyScale::kTiny);
  config.seed = seed;
  config.obs.enabled = true;
  core::Study study(std::move(config));
  study.run();
  return obs::to_chrome_trace(study.tracer());
}

TEST(ChromeTraceExport, SameSeedBitIdenticalDifferentSeedDiffers) {
  std::string first = run_tiny_study_trace(20240720);
  std::string second = run_tiny_study_trace(20240720);
  std::string other = run_tiny_study_trace(20240721);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

TEST(ChromeTraceExport, EmitsBalancedAsyncPairsAndValidShape) {
  simnet::EventQueue events;
  simnet::Network network(events);
  scan::ResultStore results;
  obs::Tracer tracer(1024);
  tracer.set_sim_clock(&events);

  auto config = fast_config();
  config.tracer = &tracer;
  scan::ScanEngine engine(network, results, config);
  engine.submit(addr(kNetA, 1));
  events.run();

  std::string json = obs::to_chrome_trace(tracer);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  auto count_sub = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + needle.size()))
      ++n;
    return n;
  };
  // Trace-linked spans emit matched async begin/end pairs on a TraceId
  // track; markers are async instants on the same track.
  EXPECT_GT(count_sub("\"ph\":\"b\""), 0u);
  EXPECT_EQ(count_sub("\"ph\":\"b\""), count_sub("\"ph\":\"e\""));
  EXPECT_GT(count_sub("\"ph\":\"n\""), 0u);
  EXPECT_GT(count_sub("\"id\":\"0x"), 0u);
  // Wall readings stay out of the export unless asked for.
  EXPECT_EQ(count_sub("wall_ns"), 0u);
  obs::ChromeTraceOptions with_wall;
  with_wall.include_wall = true;
  EXPECT_GT(obs::to_chrome_trace(tracer, with_wall).find("wall_ns"),
            0u);
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorder, BreakerOpenAppendsTraceLinkedEventsAndDumps) {
  simnet::EventQueue events;
  simnet::Network network(events);
  scan::ResultStore results;
  obs::FlightRecorder flight(256);
  flight.set_sim_clock(&events);

  // One /48 of blackholed targets: timeouts streak, the breaker opens and
  // sheds the staggered later probes.
  simnet::FaultScenario scenario;
  scenario.rules.push_back({.prefix = net::Ipv6Prefix(addr(kNetA, 0), 48),
                            .kind = simnet::FaultKind::kBlackhole,
                            .from = 0,
                            .until = simnet::sec(60)});
  network.install_faults(scenario, /*registry=*/nullptr, &flight);
  for (std::uint64_t i = 1; i <= 6; ++i) network.attach(addr(kNetA, i));

  auto config = fast_config();
  config.min_protocol_delay = simnet::sec(10);
  config.max_protocol_delay = simnet::sec(20);
  config.breaker.enabled = true;
  config.breaker.prefix_len = 48;
  config.breaker.open_after = 3;
  config.breaker.open_for = simnet::sec(30);
  config.flight = &flight;
  scan::ScanEngine engine(network, results, config);
  for (std::uint64_t i = 1; i <= 6; ++i) engine.submit(addr(kNetA, i));
  events.run();

  ASSERT_NE(engine.breaker(), nullptr);
  ASSERT_GE(engine.breaker()->opens(), 1u);

  std::uint64_t opens = 0, sheds = 0, shed_traces = 0;
  for (const auto& ev : flight.events()) {
    if (ev.kind == obs::FlightKind::kBreakerOpen) ++opens;
    if (ev.kind == obs::FlightKind::kBreakerShed) {
      ++sheds;
      if (ev.trace != 0) ++shed_traces;
    }
  }
  EXPECT_EQ(opens, engine.breaker()->opens());
  EXPECT_EQ(sheds, engine.breaker_shed());
  // Shed events carry the shed intent's TraceId (minting is tracer-free).
  EXPECT_EQ(shed_traces, sheds);

  // The breaker-open trigger dumped the ring (rate-limited thereafter).
  ASSERT_GE(flight.dumps().size(), 1u);
  EXPECT_EQ(flight.dumps().front().first, "breaker-open");
  EXPECT_NE(flight.dumps().front().second.find("breaker_open"),
            std::string::npos);
  EXPECT_EQ(flight.triggers(), flight.dumps().size() + flight.suppressed());
}

TEST(FlightRecorder, SameSeedDumpsAreBitIdentical) {
  auto run = [](std::uint64_t seed) {
    auto config = core::make_study_config(core::StudyScale::kTiny);
    config.seed = seed;
    config.obs.enabled = true;
    // Slow-dispatch events are wall-derived (observational by contract):
    // under a loaded runner, scheduler preemption pushes arbitrary
    // dispatches over the default 1 ms threshold and the two runs record
    // different events. Park the threshold out of reach so the compared
    // dumps carry only simulation-deterministic content.
    config.obs.slow_dispatch_ns = std::numeric_limits<std::int64_t>::max();
    core::Study study(std::move(config));
    study.run();
    study.flight().trigger("on-demand");
    return study.flight().dumps().back().second;
  };
  EXPECT_EQ(run(20240720), run(20240720));
}

}  // namespace
}  // namespace tts
