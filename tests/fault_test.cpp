// FaultPlane rule matching and its integration into Network: loss/delay/
// blackhole/RST/stall rules, host outages, time windows, transport,
// direction and destination-port scoping, the domain-RNG aliasing guard,
// window-edge flight events, and the NetworkConfig connect_timeout
// plumbing the blackhole path uses.
#include <gtest/gtest.h>

#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/fault.hpp"
#include "simnet/network.hpp"

namespace tts::simnet {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_halves(hi, lo);
}

constexpr std::uint64_t kFaultyNet = 0x20010db800000000ULL;
constexpr std::uint64_t kCleanNet = 0x2400cb0000000000ULL;

net::Ipv6Prefix faulty_prefix() {
  return net::Ipv6Prefix(addr(kFaultyNet, 0), 32);
}

class FaultPlaneTest : public ::testing::Test {
 protected:
  FaultPlane make_plane(FaultScenario scenario) {
    return FaultPlane(std::move(scenario), nullptr);
  }
};

TEST_F(FaultPlaneTest, LossRuleDropsOnlyInsidePrefix) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kLoss,
                            .probability = 1.0});
  FaultPlane plane = make_plane(scenario);

  EXPECT_TRUE(plane.on_udp(addr(kFaultyNet, 7), sec(1)).drop);
  EXPECT_FALSE(plane.on_udp(addr(kCleanNet, 7), sec(1)).drop);
  EXPECT_EQ(plane.udp_dropped(), 1u);
}

TEST_F(FaultPlaneTest, RulesRespectTimeWindows) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kBlackhole,
                            .from = sec(10),
                            .until = sec(20)});
  FaultPlane plane = make_plane(scenario);

  auto target = addr(kFaultyNet, 1);
  EXPECT_FALSE(plane.on_udp(target, sec(9)).drop);
  EXPECT_TRUE(plane.on_udp(target, sec(10)).drop);   // from is inclusive
  EXPECT_TRUE(plane.on_udp(target, sec(19)).drop);
  EXPECT_FALSE(plane.on_udp(target, sec(20)).drop);  // until is exclusive
}

TEST_F(FaultPlaneTest, TransportScopingSplitsUdpFromTcp) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kBlackhole,
                            .udp = false,
                            .tcp = true});
  FaultPlane plane = make_plane(scenario);

  auto target = addr(kFaultyNet, 1);
  EXPECT_FALSE(plane.on_udp(target, 0).drop);
  EXPECT_EQ(plane.on_tcp_connect(target, 0).action,
            FaultPlane::TcpAction::kBlackhole);
}

TEST_F(FaultPlaneTest, DelayRulesAccumulateAcrossMatches) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kDelay,
                            .added_latency = msec(30)});
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kDelay,
                            .added_latency = msec(20)});
  FaultPlane plane = make_plane(scenario);

  auto verdict = plane.on_udp(addr(kFaultyNet, 1), 0);
  EXPECT_FALSE(verdict.drop);
  EXPECT_EQ(verdict.extra_latency, msec(50));
  EXPECT_EQ(plane.delays_injected(), 1u);
}

TEST_F(FaultPlaneTest, JitterIsSeedDeterministic) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kDelay,
                            .added_latency = msec(10),
                            .added_jitter = msec(40)});
  std::vector<SimDuration> first, second;
  {
    FaultPlane plane = make_plane(scenario);
    for (int i = 0; i < 16; ++i)
      first.push_back(plane.on_udp(addr(kFaultyNet, 1), 0).extra_latency);
  }
  {
    FaultPlane plane = make_plane(scenario);
    for (int i = 0; i < 16; ++i)
      second.push_back(plane.on_udp(addr(kFaultyNet, 1), 0).extra_latency);
  }
  EXPECT_EQ(first, second);
  for (SimDuration d : first) {
    EXPECT_GE(d, msec(10));
    EXPECT_LT(d, msec(50));
  }
}

TEST_F(FaultPlaneTest, HostOutageWindowsCoverOneAddress) {
  FaultScenario scenario;
  scenario.outages.push_back(
      {.host = addr(kCleanNet, 9), .from = sec(5), .until = sec(15)});
  FaultPlane plane = make_plane(scenario);

  EXPECT_FALSE(plane.host_down(addr(kCleanNet, 9), sec(4)));
  EXPECT_TRUE(plane.host_down(addr(kCleanNet, 9), sec(5)));
  EXPECT_FALSE(plane.host_down(addr(kCleanNet, 8), sec(5)));  // only that host
  EXPECT_FALSE(plane.host_down(addr(kCleanNet, 9), sec(15)));

  EXPECT_TRUE(plane.on_udp(addr(kCleanNet, 9), sec(6)).drop);
  EXPECT_EQ(plane.udp_host_down(), 1u);
  EXPECT_EQ(plane.on_tcp_connect(addr(kCleanNet, 9), sec(6)).action,
            FaultPlane::TcpAction::kBlackhole);
}

TEST_F(FaultPlaneTest, OutboundScopeImpairsTrafficFromThePrefix) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kBlackhole,
                            .direction = FaultDirection::kOutbound});
  FaultPlane plane = make_plane(scenario);

  // Packets *from* the impaired prefix die; packets *into* it pass.
  EXPECT_TRUE(
      plane.on_udp(addr(kFaultyNet, 1), addr(kCleanNet, 1), 123, 0).drop);
  EXPECT_FALSE(
      plane.on_udp(addr(kCleanNet, 1), addr(kFaultyNet, 1), 123, 0).drop);
  // The legacy overload's unknown source (::) never matches an outbound
  // scope, so scope-free callers see a pristine plane.
  EXPECT_FALSE(plane.on_udp(addr(kFaultyNet, 1), 0).drop);
  EXPECT_EQ(plane.on_tcp_connect(addr(kFaultyNet, 1), addr(kCleanNet, 1), 80,
                                 0).action,
            FaultPlane::TcpAction::kBlackhole);
}

TEST_F(FaultPlaneTest, BothScopeImpairsEitherDirection) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kBlackhole,
                            .direction = FaultDirection::kBoth});
  FaultPlane plane = make_plane(scenario);

  EXPECT_TRUE(
      plane.on_udp(addr(kFaultyNet, 1), addr(kCleanNet, 1), 123, 0).drop);
  EXPECT_TRUE(
      plane.on_udp(addr(kCleanNet, 1), addr(kFaultyNet, 1), 123, 0).drop);
  EXPECT_FALSE(
      plane.on_udp(addr(kCleanNet, 1), addr(kCleanNet, 2), 123, 0).drop);
}

TEST_F(FaultPlaneTest, DstPortScopeNarrowsARule) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kBlackhole,
                            .dst_port = 123});
  FaultPlane plane = make_plane(scenario);

  // Port 123 into the prefix dies; port 80 sails through, and so does the
  // legacy wildcard-port overload (port 0 never matches a scoped rule).
  EXPECT_TRUE(
      plane.on_udp(addr(kCleanNet, 1), addr(kFaultyNet, 1), 123, 0).drop);
  EXPECT_FALSE(
      plane.on_udp(addr(kCleanNet, 1), addr(kFaultyNet, 1), 80, 0).drop);
  EXPECT_FALSE(plane.on_udp(addr(kFaultyNet, 1), 0).drop);
  EXPECT_EQ(plane.on_tcp_connect(addr(kCleanNet, 1), addr(kFaultyNet, 1), 123,
                                 0).action,
            FaultPlane::TcpAction::kBlackhole);
  EXPECT_EQ(plane.on_tcp_connect(addr(kCleanNet, 1), addr(kFaultyNet, 1), 443,
                                 0).action,
            FaultPlane::TcpAction::kNone);
}

TEST_F(FaultPlaneTest, ZeroWidthRuleWindowNeverFires) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kBlackhole,
                            .from = sec(10),
                            .until = sec(10)});
  FaultPlane plane = make_plane(scenario);

  auto target = addr(kFaultyNet, 1);
  EXPECT_FALSE(plane.on_udp(target, sec(9)).drop);
  EXPECT_FALSE(plane.on_udp(target, sec(10)).drop);  // the degenerate edge
  EXPECT_FALSE(plane.on_udp(target, sec(11)).drop);
  EXPECT_EQ(plane.on_tcp_connect(target, sec(10)).action,
            FaultPlane::TcpAction::kNone);
  EXPECT_EQ(plane.udp_dropped(), 0u);
}

TEST_F(FaultPlaneTest, OverlappingOutageWindowsOnOneHost) {
  auto host = addr(kCleanNet, 9);
  FaultScenario scenario;
  scenario.outages.push_back({.host = host, .from = sec(5), .until = sec(15)});
  scenario.outages.push_back({.host = host, .from = sec(10), .until = sec(25)});
  FaultPlane plane = make_plane(scenario);

  // The union of the two windows is down; neither edge inside it revives
  // the host, and after the later `until` it is back.
  EXPECT_FALSE(plane.host_down(host, sec(4)));
  EXPECT_TRUE(plane.host_down(host, sec(5)));
  EXPECT_TRUE(plane.host_down(host, sec(12)));  // inside both
  EXPECT_TRUE(plane.host_down(host, sec(15)));  // first ended, second holds
  EXPECT_TRUE(plane.host_down(host, sec(24)));
  EXPECT_FALSE(plane.host_down(host, sec(25)));
}

TEST_F(FaultPlaneTest, DomainWithoutStreamAssertsOrCounts) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kLoss,
                            .probability = 1.0});
#ifdef NDEBUG
  // Release: the silent-aliasing bug is counted and falls back to stream 0.
  FaultPlane plane = make_plane(scenario);
  EXPECT_TRUE(plane.on_udp(addr(kFaultyNet, 1), 0, /*domain=*/3).drop);
  EXPECT_EQ(plane.domain_fallbacks(), 1u);
#else
  // Debug: loud, immediately.
  EXPECT_DEATH(
      {
        FaultPlane plane = make_plane(scenario);
        plane.on_udp(addr(kFaultyNet, 1), 0, /*domain=*/3);
      },
      "configured RNG stream");
#endif
}

TEST_F(FaultPlaneTest, ConfiguredDomainsNeverFallBack) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kLoss,
                            .probability = 1.0});
  FaultPlane plane = make_plane(scenario);
  plane.configure_domains(4);
  EXPECT_TRUE(plane.on_udp(addr(kFaultyNet, 1), 0, /*domain=*/3).drop);
  EXPECT_EQ(plane.domain_fallbacks(), 0u);
}

TEST_F(FaultPlaneTest, WindowEdgesRecordFlightEvents) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kBlackhole,
                            .from = sec(10),
                            .until = sec(20)});
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kLoss,
                            .from = sec(5),
                            .until = sec(5)});  // zero-width: never logged
  scenario.outages.push_back(
      {.host = addr(kCleanNet, 9), .from = sec(30)});  // never closes
  EventQueue events;
  obs::FlightRecorder flight;
  flight.set_sim_clock(&events);
  FaultPlane plane = make_plane(scenario);
  plane.set_flight_recorder(&flight);
  plane.arm_windows(events);
  events.run();

  int opens = 0, closes = 0;
  for (const obs::FlightEvent& ev : flight.events()) {
    if (ev.kind == obs::FlightKind::kFaultWindowOpen) ++opens;
    if (ev.kind == obs::FlightKind::kFaultWindowClose) ++closes;
  }
  // Rule 0 opens and closes; the outage opens and never closes; the
  // zero-width rule contributes nothing.
  EXPECT_EQ(opens, 2);
  EXPECT_EQ(closes, 1);
}

// ------------------------------------------------- network integration

class FaultNetworkTest : public ::testing::Test {
 protected:
  FaultNetworkTest() : network_(events_, config()) {}
  static NetworkConfig config() {
    NetworkConfig c;
    c.min_latency = msec(10);
    c.max_latency = msec(20);
    c.jitter = 0;
    return c;
  }

  void install(FaultScenario scenario) {
    network_.install_faults(std::move(scenario));
  }

  EventQueue events_;
  Network network_;
};

TEST_F(FaultNetworkTest, UdpBlackholeRuleSwallowsDatagrams) {
  FaultScenario scenario;
  scenario.rules.push_back(
      {.prefix = faulty_prefix(), .kind = FaultKind::kBlackhole});
  install(scenario);

  bool faulty_got = false, clean_got = false;
  network_.bind_udp({addr(kFaultyNet, 1), 123},
                    [&](const Datagram&) { faulty_got = true; });
  network_.bind_udp({addr(kCleanNet, 1), 123},
                    [&](const Datagram&) { clean_got = true; });
  network_.send_udp({addr(kCleanNet, 2), 1}, {addr(kFaultyNet, 1), 123}, {1});
  network_.send_udp({addr(kCleanNet, 2), 1}, {addr(kCleanNet, 1), 123}, {1});
  events_.run();
  EXPECT_FALSE(faulty_got);
  EXPECT_TRUE(clean_got);
  EXPECT_EQ(network_.faults()->udp_dropped(), 1u);
}

TEST_F(FaultNetworkTest, DelayRuleAddsLatencyToDelivery) {
  FaultScenario scenario;
  scenario.rules.push_back({.prefix = faulty_prefix(),
                            .kind = FaultKind::kDelay,
                            .added_latency = sec(2)});
  install(scenario);

  SimTime delivered_at = -1;
  network_.bind_udp({addr(kFaultyNet, 1), 123},
                    [&](const Datagram&) { delivered_at = events_.now(); });
  network_.send_udp({addr(kCleanNet, 2), 1}, {addr(kFaultyNet, 1), 123}, {1});
  events_.run();
  ASSERT_GE(delivered_at, 0);
  EXPECT_GE(delivered_at, sec(2) + msec(10));
  EXPECT_LE(delivered_at, sec(2) + msec(20));
}

TEST_F(FaultNetworkTest, TcpBlackholeTimesOutAfterConfigConnectTimeout) {
  NetworkConfig c = config();
  c.connect_timeout = sec(3);  // not the historical hardcoded 5 s
  Network network(events_, c);
  FaultScenario scenario;
  scenario.rules.push_back(
      {.prefix = faulty_prefix(), .kind = FaultKind::kBlackhole});
  network.install_faults(scenario);
  network.attach(addr(kFaultyNet, 1));
  network.listen_tcp({addr(kFaultyNet, 1), 80}, [](TcpConnectionPtr) {});

  bool called = false;
  network.connect_tcp({addr(kCleanNet, 2), 1}, {addr(kFaultyNet, 1), 80},
                      [&](TcpConnectionPtr conn, bool refused) {
                        called = true;
                        EXPECT_EQ(conn, nullptr);
                        EXPECT_FALSE(refused);
                      });
  events_.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(events_.now(), sec(3));
  EXPECT_EQ(network.faults()->tcp_blackholed(), 1u);
}

TEST_F(FaultNetworkTest, TcpRstRefusesDespiteLiveListener) {
  FaultScenario scenario;
  scenario.rules.push_back(
      {.prefix = faulty_prefix(), .kind = FaultKind::kRst});
  install(scenario);
  network_.attach(addr(kFaultyNet, 1));
  network_.listen_tcp({addr(kFaultyNet, 1), 80}, [](TcpConnectionPtr) {});

  bool called = false;
  network_.connect_tcp({addr(kCleanNet, 2), 1}, {addr(kFaultyNet, 1), 80},
                       [&](TcpConnectionPtr conn, bool refused) {
                         called = true;
                         EXPECT_EQ(conn, nullptr);
                         EXPECT_TRUE(refused);
                       });
  events_.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(network_.faults()->tcp_rst(), 1u);
}

TEST_F(FaultNetworkTest, TcpStallEstablishesButDeliversNothing) {
  FaultScenario scenario;
  scenario.rules.push_back(
      {.prefix = faulty_prefix(), .kind = FaultKind::kStall});
  install(scenario);
  network_.attach(addr(kFaultyNet, 1));
  bool server_got_data = false, server_got_close = false;
  network_.listen_tcp({addr(kFaultyNet, 1), 80}, [&](TcpConnectionPtr conn) {
    conn->set_on_data(
        TcpConnection::Side::kServer,
        [&](std::vector<std::uint8_t>) { server_got_data = true; });
    conn->set_on_close(TcpConnection::Side::kServer,
                       [&] { server_got_close = true; });
  });

  bool established = false;
  TcpConnectionPtr client_conn;
  network_.connect_tcp({addr(kCleanNet, 2), 1}, {addr(kFaultyNet, 1), 80},
                       [&](TcpConnectionPtr conn, bool refused) {
                         ASSERT_FALSE(refused);
                         ASSERT_NE(conn, nullptr);
                         established = true;
                         client_conn = conn;
                         conn->send(TcpConnection::Side::kClient, {1, 2, 3});
                         conn->close(TcpConnection::Side::kClient);
                       });
  events_.run();
  EXPECT_TRUE(established);       // the handshake itself succeeds...
  EXPECT_FALSE(server_got_data);  // ...but no payload ever arrives
  EXPECT_FALSE(server_got_close);  // and the close is as silent as the data
  EXPECT_TRUE(client_conn->stalled());
  EXPECT_EQ(network_.faults()->tcp_stalled(), 1u);
  EXPECT_EQ(network_.faults()->stall_data_dropped(), 1u);
}

TEST_F(FaultNetworkTest, HostOutageBlackholesItsUdpAndTcp) {
  auto host = addr(kCleanNet, 9);
  FaultScenario scenario;
  scenario.outages.push_back({.host = host, .from = 0, .until = sec(30)});
  install(scenario);
  network_.attach(host);
  bool got = false;
  network_.bind_udp({host, 123}, [&](const Datagram&) { got = true; });

  network_.send_udp({addr(kCleanNet, 2), 1}, {host, 123}, {1});
  events_.run();
  EXPECT_FALSE(got);

  // After the window the same binding answers again: outage, not detach.
  events_.schedule_at(sec(31), [&] {
    network_.send_udp({addr(kCleanNet, 2), 1}, {host, 123}, {2});
  });
  events_.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(network_.faults()->udp_host_down(), 1u);
}

TEST_F(FaultNetworkTest, InstrumentsEnrollIntoRegistry) {
  // Declared before the network so it outlives the plane (which drops its
  // instruments from the registry on destruction).
  obs::Registry registry;
  Network network(events_, config());
  FaultScenario scenario;
  scenario.rules.push_back(
      {.prefix = faulty_prefix(), .kind = FaultKind::kBlackhole});
  network.install_faults(scenario, &registry);
  network.send_udp({addr(kCleanNet, 2), 1}, {addr(kFaultyNet, 1), 123}, {1});
  events_.run();

  auto snapshot = registry.snapshot(events_.now());
  const obs::SnapshotValue* dropped = snapshot.find("fault_udp_dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->count, 1u);
}

}  // namespace
}  // namespace tts::simnet
