// Study checkpoint/restore: a checkpointed mini-study resumed from its
// snapshot reproduces the uninterrupted run's report byte for byte, a
// corrupted snapshot fails loudly with the diverged section named (the
// bisection contract), and the snapshot sections decode standalone for
// offline analysis.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <string_view>

#include "core/report.hpp"
#include "core/snapshot.hpp"
#include "core/study.hpp"
#include "ntp/collector.hpp"
#include "scan/results.hpp"
#include "util/serialize.hpp"

namespace tts::core {
namespace {

constexpr simnet::SimTime kCheckpointAt = simnet::hours(18);

StudyConfig mini_config() {
  auto config = make_study_config(StudyScale::kTiny);
  config.population.device_scale = 0.05;
  config.runtime.duration = simnet::days(1);
  config.hitlist_scan_start = simnet::hours(12);
  config.drain = simnet::hours(6);
  // Mid-study: collection, the hitlist scan, and results are all live.
  config.checkpoint_at = kCheckpointAt;
  return config;
}

std::string report_of(const Study& study) {
  return render_markdown(build_report(study));
}

struct BaselineRun {
  std::string checkpoint;
  std::string report;
};

/// One uninterrupted checkpointed run, shared across tests (each gtest case
/// only reads it).
const BaselineRun& baseline() {
  static const BaselineRun run = [] {
    Study study(mini_config());
    study.run();
    return BaselineRun{study.checkpoint_bytes(), report_of(study)};
  }();
  return run;
}

TEST(StudySnapshotTest, CheckpointIsWrittenAndParses) {
  const BaselineRun& base = baseline();
  ASSERT_FALSE(base.checkpoint.empty());
  StudySnapshot snap = StudySnapshot::parse(base.checkpoint);
  EXPECT_EQ(snap.seed, mini_config().seed);
  EXPECT_EQ(snap.at, kCheckpointAt);
  for (const char* name : {"clock", "collector", "hitlist", "results", "rng"})
    EXPECT_NE(snap.section(name), nullptr) << name;
  // serialize() is the exact inverse of parse().
  EXPECT_EQ(snap.serialize(), base.checkpoint);
}

TEST(StudySnapshotTest, ResumedRunReproducesReportByteForByte) {
  const BaselineRun& base = baseline();
  Study resumed(mini_config());
  resumed.resume_from(base.checkpoint);
  resumed.run();  // verifies every section at the checkpoint, then continues
  EXPECT_EQ(report_of(resumed), base.report);
  // The combined capture+verify event re-serializes the live state: the
  // resumed run's own checkpoint is the original, byte for byte.
  EXPECT_EQ(resumed.checkpoint_bytes(), base.checkpoint);
}

StudyConfig sharded_config(std::uint32_t shards) {
  auto config = mini_config();
  config.shards.shards = shards;
  // Real worker threads even on a one-core box: the round-trip claim must
  // hold under parallel window execution, not just the serial fallback.
  config.shards.workers = shards > 1 ? 2 : 0;
  return config;
}

TEST(StudySnapshotTest, ShardedCheckpointResumeRoundTripsByteForByte) {
  // checkpoint_at + resume_from under sharded dispatch: the snapshot is
  // captured at a window barrier (every domain quiescent), so a resumed
  // sharded run verifies it and reproduces the uninterrupted run's report
  // and checkpoint byte for byte.
  Study base(sharded_config(4));
  base.run();
  ASSERT_FALSE(base.checkpoint_bytes().empty());

  Study resumed(sharded_config(4));
  resumed.resume_from(base.checkpoint_bytes());
  resumed.run();
  EXPECT_EQ(report_of(resumed), report_of(base));
  EXPECT_EQ(resumed.checkpoint_bytes(), base.checkpoint_bytes());
}

TEST(StudySnapshotTest, ShardCountIsNotSerializedIntoSnapshots) {
  // A snapshot captured on 4 shards restores on a single-shard run: the
  // shard count is thread placement, never simulation content, so nothing
  // about it is (or may be) serialized.
  Study sharded(sharded_config(4));
  sharded.run();

  Study single(sharded_config(1));
  single.resume_from(sharded.checkpoint_bytes());
  single.run();
  EXPECT_EQ(report_of(single), report_of(sharded));
  EXPECT_EQ(single.checkpoint_bytes(), sharded.checkpoint_bytes());
}

TEST(StudySnapshotTest, CorruptedSectionThrowsDivergenceNamingIt) {
  StudySnapshot snap = StudySnapshot::parse(baseline().checkpoint);
  SnapshotSection* collector = nullptr;
  for (auto& s : snap.sections)
    if (s.name == "collector") collector = &s;
  ASSERT_NE(collector, nullptr);
  ASSERT_FALSE(collector->bytes.empty());
  collector->bytes[collector->bytes.size() / 2] ^= 0x01;

  Study resumed(mini_config());
  resumed.resume_from(snap.serialize());
  try {
    resumed.run();
    FAIL() << "corrupted snapshot did not throw";
  } catch (const SnapshotDivergence& e) {
    // The bisection contract: the message names the diverged subsystem.
    EXPECT_NE(std::string_view(e.what()).find("collector"),
              std::string_view::npos)
        << e.what();
  }
}

TEST(StudySnapshotTest, TruncatedOrForeignBytesFailParse) {
  const std::string& bytes = baseline().checkpoint;
  EXPECT_THROW(StudySnapshot::parse(""), util::SerializeError);
  EXPECT_THROW(
      StudySnapshot::parse(std::string_view(bytes).substr(0, bytes.size() / 2)),
      util::SerializeError);
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(StudySnapshot::parse(bad_magic), util::SerializeError);
  // Trailing garbage is not silently ignored either.
  EXPECT_THROW(StudySnapshot::parse(bytes + "x"), util::SerializeError);
}

TEST(StudySnapshotTest, ResumeRejectsSeedMismatchAndLateCalls) {
  auto config = mini_config();
  config.seed ^= 0x9e3779b97f4a7c15ULL;
  Study wrong_seed(config);
  EXPECT_THROW(wrong_seed.resume_from(baseline().checkpoint),
               std::invalid_argument);

  Study done(mini_config());
  done.run();
  EXPECT_THROW(done.resume_from(baseline().checkpoint), std::logic_error);
}

TEST(StudySnapshotTest, DecodedSectionsAreSelfConsistent) {
  // The offline-analysis path: load a half-finished study's data plane
  // straight from the snapshot, no Study object involved.
  StudySnapshot snap = StudySnapshot::parse(baseline().checkpoint);
  EXPECT_GT(snap.events_executed(), 0u);

  ntp::CollectorState col = snap.collector();
  ASSERT_GT(col.store.size(), 0u);
  EXPECT_GE(col.requests, col.store.size());
  std::uint64_t per_server_sum = 0, daily_sum = 0;
  for (const auto& [id, n] : col.per_server) per_server_sum += n;
  for (const auto& [day, n] : col.daily_new) daily_sum += n;
  // Every distinct address is attributed to exactly one server and one day.
  EXPECT_EQ(per_server_sum, col.store.size());
  EXPECT_EQ(daily_sum, col.store.size());

  hitlist::Hitlist hl = snap.hitlist();
  EXPECT_GT(hl.full.size(), 0u);  // built at 12 h, checkpoint is 18 h
  EXPECT_EQ(hl.sources.size(), hl.full.size());
  EXPECT_EQ(hl.seen.size(), hl.full.size());

  scan::ResultStore results = snap.results();
  EXPECT_GT(results.total(scan::Dataset::kNtp), 0u);
}

TEST(StudySnapshotTest, ResultStoreRoundTripKeepsEveryRecordField) {
  scan::ResultStore store;
  scan::ScanRecord tls;
  tls.dataset = scan::Dataset::kHitlist;
  tls.protocol = scan::Protocol::kHttps;
  tls.target = net::Ipv6Address::from_halves(0x20010db8dead0000ULL, 0xbeef);
  tls.at = simnet::hours(3);
  tls.outcome = scan::Outcome::kSuccess;
  proto::Certificate cert;
  cert.fingerprint = 0x1122334455667788ULL;
  cert.subject = "CN=device.example";
  cert.self_signed = true;
  cert.not_before = 1700000000;
  cert.not_after = 1800000000;
  tls.certificate = cert;
  tls.http_status = 200;
  tls.http_title = "Login";
  tls.http_has_title = true;
  tls.http_server = "nginx/1.24";
  store.add(tls);

  scan::ScanRecord iot;
  iot.dataset = scan::Dataset::kNtp;
  iot.protocol = scan::Protocol::kCoap;
  iot.target = net::Ipv6Address::from_halves(0x2a0200000000cafeULL, 7);
  iot.outcome = scan::Outcome::kSuccess;
  iot.ssh_banner = "SSH-2.0-dropbear";
  iot.ssh_hostkey = 0xabcdef;
  iot.broker_auth_required = false;  // the tri-state's "present, false" leg
  iot.coap_resources = {"/.well-known/core", "/sensors/temp"};
  store.add(iot);

  scan::ScanRecord fail;
  fail.dataset = scan::Dataset::kRyeLevin;
  fail.protocol = scan::Protocol::kSsh;
  fail.outcome = scan::Outcome::kTimeout;  // tallied, not kept in full
  store.add(fail);

  util::ByteWriter w;
  store.save_state(w);
  std::string bytes = w.take();
  util::ByteReader r(bytes);
  scan::ResultStore loaded = scan::ResultStore::decode_state(r);
  EXPECT_TRUE(r.done());

  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.count(scan::Dataset::kRyeLevin, scan::Protocol::kSsh,
                         scan::Outcome::kTimeout),
            1u);
  const scan::ScanRecord& lt = loaded.records()[0];
  ASSERT_TRUE(lt.certificate.has_value());
  EXPECT_EQ(lt.certificate->subject, "CN=device.example");
  EXPECT_TRUE(lt.certificate->self_signed);
  const scan::ScanRecord& li = loaded.records()[1];
  ASSERT_TRUE(li.broker_auth_required.has_value());
  EXPECT_FALSE(*li.broker_auth_required);
  EXPECT_EQ(li.coap_resources,
            (std::vector<std::string>{"/.well-known/core", "/sensors/temp"}));

  // Field-for-field fidelity, without enumerating every member: the decoded
  // store re-serializes to the identical bytes.
  util::ByteWriter w2;
  loaded.save_state(w2);
  EXPECT_EQ(w2.bytes(), bytes);
}

TEST(StudySnapshotTest, CollectorRoundTripKeepsCountsAndTimeline) {
  ntp::AddressCollector collector;
  auto a = [](std::uint64_t hi, std::uint64_t lo) {
    return net::Ipv6Address::from_halves(hi, lo);
  };
  collector.record(a(0x10, 1), 0, simnet::hours(1));
  collector.record(a(0x10, 2), 1, simnet::hours(2));
  collector.record(a(0x10, 1), 1, simnet::hours(3));  // dedup hit
  collector.record(a(0x20, 1), 0, simnet::days(1) + simnet::hours(1));

  util::ByteWriter w;
  collector.save_state(w);
  std::string bytes = w.take();
  util::ByteReader r(bytes);
  ntp::CollectorState state = ntp::AddressCollector::decode_state(r);
  EXPECT_TRUE(r.done());

  EXPECT_EQ(state.requests, 4u);
  EXPECT_EQ(state.dedup_hits, 1u);
  EXPECT_EQ(state.store.size(), 3u);
  EXPECT_EQ(state.store.snapshot(), collector.snapshot());
  ASSERT_EQ(state.per_server.size(), 2u);
  EXPECT_EQ(state.per_server[0], (std::pair<ntp::ServerId, std::uint64_t>{0, 2}));
  EXPECT_EQ(state.per_server[1], (std::pair<ntp::ServerId, std::uint64_t>{1, 1}));
  EXPECT_EQ(state.daily_new.at(0), 2u);
  EXPECT_EQ(state.daily_new.at(1), 1u);
}

}  // namespace
}  // namespace tts::core
