#include "net/oui_db.hpp"

#include <algorithm>

namespace tts::net {

OuiDatabase::OuiDatabase(std::vector<OuiEntry> entries) {
  for (auto& e : entries) by_oui_.emplace(e.oui, std::move(e.vendor));
}

void OuiDatabase::add(std::uint32_t oui, std::string vendor) {
  by_oui_[oui] = std::move(vendor);
}

std::optional<std::string_view> OuiDatabase::lookup(std::uint32_t oui) const {
  auto it = by_oui_.find(oui);
  if (it == by_oui_.end()) return std::nullopt;
  return std::string_view(it->second);
}

std::optional<std::string_view> OuiDatabase::lookup(
    const MacAddress& mac) const {
  return lookup(mac.oui());
}

std::vector<std::uint32_t> OuiDatabase::ouis_for(
    std::string_view vendor) const {
  std::vector<std::uint32_t> out;
  // ttslint: allow(unordered-iter) reason=out is sorted below, so the visit order cannot escape
  for (const auto& [oui, name] : by_oui_)
    if (name == vendor) out.push_back(oui);
  std::sort(out.begin(), out.end());
  return out;
}

MacEmbedding OuiDatabase::classify(const Ipv6Address& addr) const {
  auto mac = extract_mac(addr);
  if (!mac) return MacEmbedding::kNone;
  if (mac->locally_administered()) return MacEmbedding::kLocal;
  return lookup(*mac) ? MacEmbedding::kGlobalListed
                      : MacEmbedding::kGlobalUnlisted;
}

const OuiDatabase& OuiDatabase::builtin() {
  static const OuiDatabase db(std::vector<OuiEntry>{
      // Paper Table 4 vendors (top 20 by recovered MACs). Multiple OUIs per
      // large vendor mirror real registry structure.
      {0x001A4F, "AVM Audiovisuelles Marketing und Computersysteme GmbH"},
      {0xC80E14, "AVM Audiovisuelles Marketing und Computersysteme GmbH"},
      {0x3CA62F, "AVM Audiovisuelles Marketing und Computersysteme GmbH"},
      {0xE0286D, "AVM GmbH"},
      {0x443708, "AVM GmbH"},
      {0x74DA88, "Amazon Technologies Inc."},
      {0x0C47C9, "Amazon Technologies Inc."},
      {0xF0D2F1, "Amazon Technologies Inc."},
      {0x8CF5A3, "Samsung Electronics Co.,Ltd"},
      {0xE8508B, "Samsung Electronics Co.,Ltd"},
      {0x000E58, "Sonos, Inc."},
      {0x48A6B8, "Sonos, Inc."},
      {0xA89675, "vivo Mobile Communication Co., Ltd."},
      {0x503237, "Shenzhen Ogemray Technology Co.,Ltd"},
      {0x98D371, "China Dragon Technology Limited"},
      {0x1C77F6, "GUANGDONG OPPO MOBILE TELECOMMUNICATIONS CORP.,LTD"},
      {0x84E0F4, "Shenzhen iComm Semiconductor CO.,LTD"},
      {0xB0989F, "Qingdao Haier Multimedia Limited."},
      {0x903A72, "QING DAO HAIER TELECOM CO.,LTD."},
      {0xD8325A, "Hui Zhou Gaoshengda Technology Co.,LTD"},
      {0x48D875, "Fiberhome Telecommunication Technologies Co.,LTD"},
      {0xC83A35, "Tenda Technology Co.,Ltd.Dongguan branch"},
      {0x64B473, "Beijing Xiaomi Electronics Co.,Ltd"},
      {0x18C3F4, "Earda Technologies co Ltd"},
      {0xF4B8A7, "Guangzhou Shiyuan Electronics Co., Ltd."},
      {0x88DE7C, "Shenzhen Cultraview Digital Technology Co., Ltd"},
      // Additional common vendors so the infrastructure/server population
      // also resolves (Raspberry Pis, Intel NICs, Cisco gear, TP-Link CPE).
      {0xB827EB, "Raspberry Pi Foundation"},
      {0xDCA632, "Raspberry Pi Trading Ltd"},
      {0x3C7C3F, "ASUSTek COMPUTER INC."},
      {0x00E04C, "REALTEK SEMICONDUCTOR CORP."},
      {0x8C1645, "LCFC(HeFei) Electronics Technology co., ltd"},
      {0xA0369F, "Intel Corporate"},
      {0x5C5AC7, "Cisco Systems, Inc"},
      {0x14DDA9, "ASUSTek COMPUTER INC."},
      {0x50C7BF, "TP-LINK TECHNOLOGIES CO.,LTD."},
      {0xC025E9, "TP-LINK TECHNOLOGIES CO.,LTD."},
      {0xBC223A, "D-Link International"},
      {0x1C7EE5, "D-Link International"},
      {0x001B2F, "NETGEAR"},
      {0x9C3DCF, "NETGEAR"},
      {0x001DAA, "DrayTek Corp."},
      {0x04D4C4, "ASUSTek COMPUTER INC."},
      {0xFCECDA, "Ubiquiti Inc"},
  });
  return db;
}

}  // namespace tts::net
