// NTP Pool monitoring model.
//
// The real pool only hands out servers whose monitoring score is above a
// threshold; unstable servers drop out of rotation (Appendix A.1.1 is
// built around this: "only stable servers that reliably answer NTP
// requests are a valuable addition"). The monitor periodically queries
// every registered server from a vantage address: a miss costs points, a
// valid response earns some back, capped at the pool's maximum of 20.
//
// The monitor also listens to the network's routing signal plane: a
// withdrawn route means a server is *unreachable*, not merely flaky, so it
// is demoted out of rotation immediately (no need to burn check rounds
// discovering the obvious) and its pre-withdrawal score is restored the
// moment the route re-converges.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "ntp/client.hpp"
#include "ntp/pool.hpp"
#include "simnet/network.hpp"

namespace tts::ntp {

struct PoolMonitorConfig {
  net::Ipv6Address vantage;              // monitoring station address
  simnet::SimDuration check_interval = simnet::minutes(15);
  simnet::SimDuration duration = simnet::days(28);
  int max_score = 20;
  /// Score change per outcome (the real pool: roughly -5 per miss, +1 per
  /// valid response).
  int on_miss = -5;
  int on_success = 1;
  /// Decay floor. The real pool bottoms out around -100; a higher floor
  /// bounds how long a recovered server needs to climb back into rotation
  /// (useful for fault-injection runs on short horizons).
  int min_score = -100;
};

class PoolMonitor {
 public:
  PoolMonitor(simnet::Network& network, NtpPool& pool,
              PoolMonitorConfig config);

  void start();

  std::uint64_t checks_run() const { return checks_; }
  std::uint64_t misses() const { return misses_; }
  /// Servers fast-demoted out of rotation by a route withdrawal /
  /// re-promoted into rotation by the re-announcement.
  std::uint64_t route_demotions() const { return route_demotions_; }
  std::uint64_t route_promotions() const { return route_promotions_; }

 private:
  void run_round();
  /// Route-plane reaction, invoked from the plane's barrier commit (so the
  /// direct set_monitor_score calls below are already quiescent).
  void on_route_transition(const net::Ipv6Prefix& prefix, simnet::RouteOp op);

  simnet::Network& network_;
  NtpPool& pool_;
  PoolMonitorConfig config_;
  NtpClient client_;
  simnet::EventQueue::CategoryId category_;
  std::uint16_t next_port_ = 20000;
  std::uint64_t checks_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t route_demotions_ = 0;
  std::uint64_t route_promotions_ = 0;
  /// Pre-withdrawal scores of servers inside a currently-withdrawn route,
  /// restored on re-announcement. Keyed lookups only — never iterated.
  std::unordered_map<net::Ipv6Address, int, net::Ipv6AddressHash>
      saved_scores_;
  bool started_ = false;
};

}  // namespace tts::ntp
