// ttslint's C++ tokenizer: a deliberately small lexer that understands just
// enough C++ to drive token-level determinism rules — identifiers, numbers,
// string/char literals (incl. raw strings), comments (kept as tokens so the
// suppression-pragma grammar can read them), preprocessor lines, and the
// handful of multi-character operators the rules match on.
//
// It does NOT preprocess, expand macros, or track types; the rules in
// lint.cpp layer file-local declaration scans on top of this stream.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ttslint {

enum class Tok {
  kIdent,
  kNumber,
  kString,   // "..." or R"(...)" — text excludes quotes
  kChar,     // '...'
  kPunct,    // operators & punctuation, possibly multi-char (::, +=, ...)
  kComment,  // // or /* */ — text excludes the comment markers
  kPreproc,  // a whole preprocessor line (continuations folded)
};

struct Token {
  Tok kind;
  std::string text;
  int line = 1;  // 1-based line of the token's first character
  int col = 1;   // 1-based column of the token's first character

  bool is(Tok k, std::string_view t) const { return kind == k && text == t; }
  bool ident(std::string_view t) const { return is(Tok::kIdent, t); }
  bool punct(std::string_view t) const { return is(Tok::kPunct, t); }
};

/// Lex `src`. Malformed input (unterminated literals/comments) never throws:
/// the remainder becomes one final token of the open kind.
std::vector<Token> tokenize(std::string_view src);

}  // namespace ttslint
