// Bounded, dataset-fair staging for scan probe intents.
//
// The pull-based pacing pump (ScanEngine::pump, woken by one coalesced
// simnet::Timer per engine) stores *intents* here — (target, position in
// the protocol chain, not-before time) — instead of pre-reserving
// rate-limiter slots at submission; slots come from the engine's
// scan::SharedBudget at launch time. Each dataset gets its own
// lane with its own capacity, so a bulk hitlist sweep can never crowd out
// the real-time NTP feed: pulls round-robin across lanes with due work, and
// a full lane pushes back on the submitter instead of growing without
// bound. Ties at equal not-before times break by staging order, keeping
// pull order (and therefore every downstream RNG draw) deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "net/ipv6.hpp"
#include "scan/results.hpp"
#include "simnet/time.hpp"

namespace tts::scan {

/// One staged probe: the pump launches it at the first token-bucket slot at
/// or after `not_before`.
struct ScanIntent {
  simnet::SimTime not_before = 0;
  Dataset dataset = Dataset::kNtp;
  /// Index into the engine's protocol order (the stagger chain position).
  std::uint8_t chain_pos = 0;
  /// Retry attempt: 0 for the first probe, incremented each re-stage.
  std::uint8_t attempt = 0;
  net::Ipv6Address target;
  // Causal tracing context, carried but never read by the queue itself.
  // New fields go after `target`: engine and tests build intents with
  // positional designated initializers over the fields above.
  /// obs::Tracer::TraceId of the probe lifecycle (0 = tracing off).
  std::uint64_t trace = 0;
  /// Open whole-lifecycle span (submit -> record), closed by the engine at
  /// the final outcome. obs::Tracer::SpanId; 0 = none.
  std::uint64_t lifecycle_span = 0;
  /// Open staging span (stage -> grant/shed), closed when the pump pulls
  /// or sheds this intent. obs::Tracer::SpanId; 0 = none.
  std::uint64_t stage_span = 0;
};

class PendingQueue {
 public:
  explicit PendingQueue(std::size_t lane_capacity);

  /// Stage an intent. False when the intent's lane is at capacity — the
  /// caller must apply backpressure instead of queueing.
  bool push(ScanIntent intent);

  bool full(Dataset lane) const { return free_slots(lane) == 0; }
  std::size_t free_slots(Dataset lane) const;

  /// Earliest not_before across all lanes (nullopt when empty).
  std::optional<simnet::SimTime> next_not_before() const;
  bool has_due(simnet::SimTime now) const;
  /// Pop one intent with not_before <= now, round-robin across lanes with
  /// due work so no dataset starves another. nullopt when nothing is due.
  std::optional<ScanIntent> pull_due(simnet::SimTime now);
  /// The intent the next pull_due(now) would return, without popping or
  /// advancing the round-robin cursor — lets the pump decide (breaker
  /// admission) before spending a budget token on it.
  const ScanIntent* peek_due(simnet::SimTime now) const;

  std::size_t size() const { return size_; }
  std::size_t lane_size(Dataset lane) const;
  std::size_t lane_capacity() const { return lane_capacity_; }
  /// High-water mark of size() over the queue's lifetime.
  std::size_t peak() const { return peak_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Entry {
    ScanIntent intent;
    std::uint64_t seq;  // staging-order tie-break: deterministic pulls
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.intent.not_before != b.intent.not_before)
        return a.intent.not_before > b.intent.not_before;
      return a.seq > b.seq;
    }
  };
  using Lane = std::priority_queue<Entry, std::vector<Entry>, Later>;

  std::array<Lane, kDatasetCount> lanes_;
  std::size_t lane_capacity_;
  std::size_t size_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t rr_next_ = 0;  // lane offset the next pull starts from
};

}  // namespace tts::scan
