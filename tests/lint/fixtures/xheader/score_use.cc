// The TU side of the cross-header alias fixture: drains a ScoreIndex into
// a vector (hash order escapes). No FINDING markers here — the expectation
// depends on the mode: standalone linting must stay silent (the alias is
// invisible), the compile-commands pass must report unordered-iter on the
// range-for line. ttslint_test.cpp asserts both directions.
#include <vector>

#include "score_env.hpp"

namespace demo {

std::vector<int> drain_scores(const ScoreIndex& scores) {
  std::vector<int> out;
  for (const auto& [id, score] : scores) {
    out.push_back(score);
  }
  return out;
}

}  // namespace demo
