#include "obs/heartbeat.hpp"

namespace tts::obs {

Heartbeat::Heartbeat(simnet::EventQueue& events, const Registry& registry,
                     HeartbeatConfig config)
    : events_(events),
      registry_(registry),
      config_(config),
      category_(events.register_category("heartbeat")) {
  if (config_.interval < 1) config_.interval = 1;
}

void Heartbeat::start() {
  if (started_) return;
  started_ = true;
  arm();
}

void Heartbeat::arm() {
  simnet::SimTime next = events_.now() + config_.interval;
  if (next > config_.until || timeline_.size() >= config_.max_snapshots)
    return;
  // The queue may outlive `this` only if the owner never runs it again
  // after destroying the heartbeat; Study guarantees that ordering.
  events_.schedule_at(next, category_, [this] { tick(); });
}

void Heartbeat::tick() {
  if (stopped_) return;
  snap_now();
  arm();
}

void Heartbeat::snap_now() {
  RegistrySnapshot snap = registry_.snapshot(events_.now());
  // A second reading at the same virtual instant (e.g. a tick on the run
  // horizon followed by the final end-of-run snapshot) replaces the first
  // instead of duplicating the timeline row.
  if (!timeline_.empty() && timeline_.back().at == snap.at)
    timeline_.back() = std::move(snap);
  else
    timeline_.push_back(std::move(snap));
}

}  // namespace tts::obs
