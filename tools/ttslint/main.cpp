// ttslint CLI: lint files or directory trees of C++ sources.
//
//   ttslint [--json] [--allow-wallclock=<path-suffix>]...
//           [--compile-commands=<compile_commands.json>] <path>...
//
// Directories are walked recursively for .cpp/.cc/.hpp/.h files. When a
// .cpp/.cc has a same-named .hpp/.h next to it, that header's declarations
// seed the type environment (the header is also linted on its own).
//
// --compile-commands drives a multi-TU pass from a compilation database:
// each database TU is linted with the type environment seeded from every
// quoted include resolvable through the TU's directory and -I/-isystem
// paths — the cross-header aliases single-TU mode cannot see. Resolved
// headers are linted standalone too (once each). Positional paths may be
// mixed in and are linted in single-TU mode as usual.
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage/IO error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::string paired_header_for(const fs::path& p) {
  const std::string ext = p.extension().string();
  if (ext != ".cpp" && ext != ".cc") return {};
  for (const char* hext : {".hpp", ".h"}) {
    fs::path header = p;
    header.replace_extension(hext);
    std::string text;
    if (fs::exists(header) && read_file(header, text)) return text;
  }
  return {};
}

}  // namespace

// One lint job: a file plus the per-TU env headers it gets linted with.
struct Unit {
  fs::path file;
  std::vector<std::string> env_sources;
};

/// Expand one database entry into its TU unit (env seeded from resolved
/// includes) and standalone units for newly seen resolved headers.
bool expand_compile_command(const ttslint::CompileCommand& cmd,
                            std::vector<Unit>& units,
                            std::set<std::string>& seen) {
  fs::path dir = cmd.directory.empty() ? fs::path(".")
                                       : fs::path(cmd.directory);
  fs::path tu = cmd.file;
  if (tu.is_relative()) tu = dir / tu;
  std::string source;
  if (!read_file(tu, source)) {
    std::cerr << "ttslint: cannot read '" << tu.string()
              << "' (from compilation database)\n";
    return false;
  }
  Unit unit{tu, {}};
  for (const std::string& name : ttslint::quoted_includes(source)) {
    // Quoted-include search order: the TU's own directory first, then the
    // command's -I/-isystem paths (relative ones against its directory).
    std::vector<fs::path> candidates{tu.parent_path() / name};
    for (const std::string& inc : cmd.includes) {
      fs::path base = inc;
      if (base.is_relative()) base = dir / base;
      candidates.push_back(base / name);
    }
    for (const fs::path& candidate : candidates) {
      std::error_code ec;
      std::string text;
      if (!fs::is_regular_file(candidate, ec) ||
          !read_file(candidate, text))
        continue;
      unit.env_sources.push_back(std::move(text));
      if (lintable(candidate) &&
          seen.insert(candidate.lexically_normal().generic_string()).second)
        units.push_back({candidate, {}});
      break;
    }
  }
  if (seen.insert(tu.lexically_normal().generic_string()).second)
    units.push_back(std::move(unit));
  return true;
}

int main(int argc, char** argv) {
  ttslint::Options options;
  bool json = false;
  std::vector<fs::path> roots;
  std::vector<fs::path> databases;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--allow-wallclock=", 0) == 0) {
      options.wallclock_allow.push_back(arg.substr(18));
    } else if (arg.rfind("--compile-commands=", 0) == 0) {
      databases.emplace_back(arg.substr(19));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ttslint [--json] [--allow-wallclock=<suffix>]... "
                   "[--compile-commands=<db.json>] <file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ttslint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty() && databases.empty()) {
    std::cerr << "ttslint: no inputs (see --help)\n";
    return 2;
  }

  std::vector<Unit> units;
  std::set<std::string> seen;
  for (const fs::path& db : databases) {
    std::string text;
    if (!read_file(db, text)) {
      std::cerr << "ttslint: cannot read '" << db.string() << "'\n";
      return 2;
    }
    auto commands = ttslint::parse_compile_commands(text);
    if (commands.empty()) {
      std::cerr << "ttslint: '" << db.string()
                << "' holds no compile commands\n";
      return 2;
    }
    for (const auto& cmd : commands)
      if (!expand_compile_command(cmd, units, seen)) return 2;
  }
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable(entry.path()))
          units.push_back({entry.path(), {}});
      }
    } else if (fs::is_regular_file(root, ec)) {
      units.push_back({root, {}});
    } else {
      std::cerr << "ttslint: cannot read '" << root.string() << "'\n";
      return 2;
    }
  }
  std::sort(units.begin(), units.end(),
            [](const Unit& a, const Unit& b) { return a.file < b.file; });

  int total = 0;
  for (Unit& unit : units) {
    std::string source;
    if (!read_file(unit.file, source)) {
      std::cerr << "ttslint: cannot read '" << unit.file.string() << "'\n";
      return 2;
    }
    ttslint::Options unit_options = options;
    unit_options.env_sources = std::move(unit.env_sources);
    const std::string path = unit.file.generic_string();
    auto findings = ttslint::lint_source(
        path, source, paired_header_for(unit.file), unit_options);
    for (const auto& f : findings) {
      std::cout << (json ? ttslint::format_finding_json(f)
                         : ttslint::format_finding(f))
                << "\n";
      ++total;
    }
  }
  if (!json && total > 0)
    std::cerr << "ttslint: " << total << " finding(s)\n";
  return total == 0 ? 0 : 1;
}
