#include "analysis/network_agg.hpp"

#include <unordered_map>

#include "net/address_store.hpp"
#include "util/stats.hpp"

namespace tts::analysis {

NetworkAggregates aggregate(std::span<const net::Ipv6Address> addresses,
                            const inet::AsRegistry& registry) {
  NetworkAggregates out;
  out.addresses = addresses.size();
  // One compact /64-keyed pass replaces four per-level prefix hash sets:
  // the store's prefix index is sorted by hi64, so distinct /32../56
  // counts fall out of one scan over masked keys (masking a sorted
  // sequence keeps it sorted).
  net::AddressStore store;
  store.insert_batch(addresses);
  out.nets64 = store.prefix_count();
  std::uint64_t last32 = 0, last48 = 0, last56 = 0;
  bool first = true;
  store.for_each_prefix([&](std::uint64_t hi,
                            std::span<const std::uint64_t> iids) {
    (void)iids;
    std::uint64_t p32 = hi >> 32, p48 = hi >> 16, p56 = hi >> 8;
    if (first || p32 != last32) ++out.nets32;
    if (first || p48 != last48) ++out.nets48;
    if (first || p56 != last56) ++out.nets56;
    last32 = p32;
    last48 = p48;
    last56 = p56;
    first = false;
  });
  AsSet ases;
  std::unordered_set<std::string> countries;
  for (const auto& a : addresses) {
    if (const inet::AsInfo* as = registry.origin(a)) {
      ases.insert(as->number);
      countries.insert(as->country);
    }
  }
  out.ases = ases.size();
  out.countries = countries.size();
  return out;
}

PrefixSet prefixes_of(std::span<const net::Ipv6Address> addresses,
                      unsigned prefix_len) {
  PrefixSet out;
  for (const auto& a : addresses) out.insert(net::Ipv6Prefix(a, prefix_len));
  return out;
}

AsSet ases_of(std::span<const net::Ipv6Address> addresses,
              const inet::AsRegistry& registry) {
  AsSet out;
  for (const auto& a : addresses)
    if (const inet::AsInfo* as = registry.origin(a)) out.insert(as->number);
  return out;
}

std::uint64_t overlap(const PrefixSet& a, const PrefixSet& b) {
  const PrefixSet& small = a.size() <= b.size() ? a : b;
  const PrefixSet& large = a.size() <= b.size() ? b : a;
  std::uint64_t n = 0;
  for (const auto& p : small)
    if (large.contains(p)) ++n;
  return n;
}

std::uint64_t overlap(const AsSet& a, const AsSet& b) {
  const AsSet& small = a.size() <= b.size() ? a : b;
  const AsSet& large = a.size() <= b.size() ? b : a;
  std::uint64_t n = 0;
  for (const auto& as : small)
    if (large.contains(as)) ++n;
  return n;
}

std::uint64_t address_overlap(std::span<const net::Ipv6Address> lhs,
                              std::span<const net::Ipv6Address> rhs) {
  net::AddressStore set;
  set.insert_batch(lhs);
  std::uint64_t n = 0;
  for (const auto& addr : rhs)
    if (set.contains(addr)) ++n;
  return n;
}

double median_ips_per_net(std::span<const net::Ipv6Address> addresses,
                          unsigned prefix_len) {
  std::unordered_map<net::Ipv6Prefix, std::uint64_t, net::Ipv6PrefixHash>
      counts;
  for (const auto& a : addresses) ++counts[net::Ipv6Prefix(a, prefix_len)];
  std::vector<double> values;
  values.reserve(counts.size());
  // ttslint: allow(unordered-iter) reason=median() sorts values, so the visit order cannot affect the result
  for (const auto& [prefix, n] : counts)
    values.push_back(static_cast<double>(n));
  return util::median(std::move(values));
}

double median_ips_per_as(std::span<const net::Ipv6Address> addresses,
                         const inet::AsRegistry& registry) {
  std::unordered_map<net::AsNumber, std::uint64_t> counts;
  for (const auto& a : addresses)
    if (const inet::AsInfo* as = registry.origin(a)) ++counts[as->number];
  std::vector<double> values;
  values.reserve(counts.size());
  // ttslint: allow(unordered-iter) reason=median() sorts values, so the visit order cannot affect the result
  for (const auto& [asn, n] : counts)
    values.push_back(static_cast<double>(n));
  return util::median(std::move(values));
}

}  // namespace tts::analysis
