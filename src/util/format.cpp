#include "util/format.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace tts::util {

std::string grouped(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(' ');
    out.push_back(digits[i]);
  }
  return out;
}

std::string grouped(std::int64_t value) {
  if (value < 0) return "-" + grouped(static_cast<std::uint64_t>(-value));
  return grouped(static_cast<std::uint64_t>(value));
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string percent(double ratio, int digits) {
  return fixed(ratio * 100.0, digits) + " %";
}

std::string permille(double ratio, int digits) {
  return fixed(ratio * 1000.0, digits) + "‰";
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i])))
      return false;
  }
  return true;
}

bool icontains(std::string_view s, std::string_view needle) {
  if (needle.empty()) return true;
  if (s.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= s.size(); ++i) {
    if (istarts_with(s.substr(i), needle)) return true;
  }
  return false;
}

void append_hex_byte(std::string& out, std::uint8_t byte) {
  static constexpr char kHex[] = "0123456789abcdef";
  out.push_back(kHex[byte >> 4]);
  out.push_back(kHex[byte & 0xf]);
}

std::string hex(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) append_hex_byte(out, data[i]);
  return out;
}

}  // namespace tts::util
