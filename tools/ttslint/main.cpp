// ttslint CLI: lint files or directory trees of C++ sources.
//
//   ttslint [--json] [--allow-wallclock=<path-suffix>]...
//           [--allow-thread=<path-suffix>]... [--only=<path-fragment>]...
//           [--compile-commands=<compile_commands.json>] <path>...
//
// Directories are walked recursively for .cpp/.cc/.hpp/.h files. When a
// .cpp/.cc has a same-named .hpp/.h next to it, that header's declarations
// seed the type environment (the header is also linted on its own).
//
// --compile-commands drives a multi-TU pass from a compilation database:
// each database TU is linted with the type environment seeded from every
// quoted include resolvable through the TU's directory and -I/-isystem
// paths — the cross-header aliases single-TU mode cannot see. Resolved
// headers are linted standalone too (once each). Positional paths may be
// mixed in and are linted in single-TU mode as usual. Every job is keyed
// by its normalised absolute path, so a file reached through several TUs'
// env_sources, several database entries, or both a database and a
// positional root is linted exactly once (the database's env-seeded job
// wins) — output is stable and countable however the inputs overlap.
//
// --only=<fragment> keeps only jobs whose normalised path contains the
// fragment (repeatable, OR semantics): the way a whole-build database run
// scopes itself to src/ + bench/ + examples/ without losing the env
// seeding that the tests' TUs contribute.
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage/IO error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::string paired_header_for(const fs::path& p) {
  const std::string ext = p.extension().string();
  if (ext != ".cpp" && ext != ".cc") return {};
  for (const char* hext : {".hpp", ".h"}) {
    fs::path header = p;
    header.replace_extension(hext);
    std::string text;
    if (fs::exists(header) && read_file(header, text)) return text;
  }
  return {};
}

/// Normalised absolute path: the dedupe key that makes "src/a.hpp",
/// "./src/a.hpp" and the same header resolved through two different TUs'
/// include paths one and the same lint job.
std::string norm_key(const fs::path& p) {
  std::error_code ec;
  fs::path abs = fs::absolute(p, ec);
  if (ec) abs = p;
  return abs.lexically_normal().generic_string();
}

}  // namespace

// One lint job: a file plus the per-TU env headers it gets linted with.
struct Unit {
  fs::path file;
  std::vector<std::string> env_sources;
};

/// Deduplicating unit collection. A file reached several ways is linted
/// once; a database TU's env-seeded job replaces any plain job for the
/// same file (richer environment, superset of findings).
class UnitSet {
 public:
  /// Add a job unless the file is already queued. An env-carrying unit
  /// upgrades an env-less one for the same file.
  void add(Unit unit) {
    std::string key = norm_key(unit.file);
    auto [it, fresh] = index_.try_emplace(key, units_.size());
    if (fresh) {
      units_.push_back(std::move(unit));
    } else if (!unit.env_sources.empty() &&
               units_[it->second].env_sources.empty()) {
      units_[it->second] = std::move(unit);
    }
  }

  /// Drop units whose normalised path contains none of `fragments`
  /// (no-op when empty), then order by normalised path.
  std::vector<Unit> take_sorted(const std::vector<std::string>& fragments) {
    std::vector<Unit> out = std::move(units_);
    if (!fragments.empty()) {
      out.erase(std::remove_if(out.begin(), out.end(),
                               [&](const Unit& u) {
                                 std::string key = norm_key(u.file);
                                 for (const auto& frag : fragments)
                                   if (key.find(frag) != std::string::npos)
                                     return false;
                                 return true;
                               }),
                out.end());
    }
    std::sort(out.begin(), out.end(), [](const Unit& a, const Unit& b) {
      return norm_key(a.file) < norm_key(b.file);
    });
    return out;
  }

 private:
  std::vector<Unit> units_;
  std::map<std::string, std::size_t> index_;
};

/// Expand one database entry into its TU unit (env seeded from resolved
/// includes) and standalone units for resolved headers.
bool expand_compile_command(const ttslint::CompileCommand& cmd,
                            UnitSet& units) {
  fs::path dir = cmd.directory.empty() ? fs::path(".")
                                       : fs::path(cmd.directory);
  fs::path tu = cmd.file;
  if (tu.is_relative()) tu = dir / tu;
  std::string source;
  if (!read_file(tu, source)) {
    std::cerr << "ttslint: cannot read '" << tu.string()
              << "' (from compilation database)\n";
    return false;
  }
  Unit unit{tu, {}};
  for (const std::string& name : ttslint::quoted_includes(source)) {
    // Quoted-include search order: the TU's own directory first, then the
    // command's -I/-isystem paths (relative ones against its directory).
    std::vector<fs::path> candidates{tu.parent_path() / name};
    for (const std::string& inc : cmd.includes) {
      fs::path base = inc;
      if (base.is_relative()) base = dir / base;
      candidates.push_back(base / name);
    }
    for (const fs::path& candidate : candidates) {
      std::error_code ec;
      std::string text;
      if (!fs::is_regular_file(candidate, ec) ||
          !read_file(candidate, text))
        continue;
      unit.env_sources.push_back(std::move(text));
      if (lintable(candidate)) units.add({candidate, {}});
      break;
    }
  }
  units.add(std::move(unit));
  return true;
}

int main(int argc, char** argv) {
  ttslint::Options options;
  bool json = false;
  std::vector<fs::path> roots;
  std::vector<fs::path> databases;
  std::vector<std::string> only;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--allow-wallclock=", 0) == 0) {
      options.wallclock_allow.push_back(arg.substr(18));
    } else if (arg.rfind("--allow-thread=", 0) == 0) {
      options.thread_allow.push_back(arg.substr(15));
    } else if (arg.rfind("--only=", 0) == 0) {
      only.push_back(arg.substr(7));
    } else if (arg.rfind("--compile-commands=", 0) == 0) {
      databases.emplace_back(arg.substr(19));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ttslint [--json] [--allow-wallclock=<suffix>]... "
                   "[--allow-thread=<suffix>]... [--only=<fragment>]... "
                   "[--compile-commands=<db.json>] <file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ttslint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty() && databases.empty()) {
    std::cerr << "ttslint: no inputs (see --help)\n";
    return 2;
  }

  UnitSet collected;
  for (const fs::path& db : databases) {
    std::string text;
    if (!read_file(db, text)) {
      std::cerr << "ttslint: cannot read '" << db.string() << "'\n";
      return 2;
    }
    auto commands = ttslint::parse_compile_commands(text);
    if (commands.empty()) {
      std::cerr << "ttslint: '" << db.string()
                << "' holds no compile commands\n";
      return 2;
    }
    for (const auto& cmd : commands)
      if (!expand_compile_command(cmd, collected)) return 2;
  }
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable(entry.path()))
          collected.add({entry.path(), {}});
      }
    } else if (fs::is_regular_file(root, ec)) {
      collected.add({root, {}});
    } else {
      std::cerr << "ttslint: cannot read '" << root.string() << "'\n";
      return 2;
    }
  }
  std::vector<Unit> units = collected.take_sorted(only);

  int total = 0;
  for (Unit& unit : units) {
    std::string source;
    if (!read_file(unit.file, source)) {
      std::cerr << "ttslint: cannot read '" << unit.file.string() << "'\n";
      return 2;
    }
    ttslint::Options unit_options = options;
    unit_options.env_sources = std::move(unit.env_sources);
    const std::string path = unit.file.generic_string();
    auto findings = ttslint::lint_source(
        path, source, paired_header_for(unit.file), unit_options);
    for (const auto& f : findings) {
      std::cout << (json ? ttslint::format_finding_json(f)
                         : ttslint::format_finding(f))
                << "\n";
      ++total;
    }
  }
  if (!json && total > 0)
    std::cerr << "ttslint: " << total << " finding(s)\n";
  return total == 0 ? 0 : 1;
}
