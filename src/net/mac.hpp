// MAC (EUI-48) addresses and the Modified EUI-64 interface-identifier
// embedding of RFC 4291 Appendix A.
//
// The paper's Appendix B recovers MAC addresses from SLAAC-configured IPv6
// addresses (IIDs containing the ff:fe marker), checks the U/L "unique" bit,
// and joins OUIs against the IEEE registry to rank device vendors (Table 4).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv6.hpp"

namespace tts::net {

class MacAddress {
 public:
  static constexpr std::size_t kBytes = 6;

  constexpr MacAddress() : bytes_{} {}

  static constexpr MacAddress from_bytes(
      const std::array<std::uint8_t, kBytes>& b) {
    MacAddress m;
    m.bytes_ = b;
    return m;
  }

  /// Build from a 48-bit integer (big-endian byte order).
  static constexpr MacAddress from_u64(std::uint64_t v) {
    MacAddress m;
    for (std::size_t i = 0; i < kBytes; ++i)
      m.bytes_[i] = static_cast<std::uint8_t>(v >> (40 - 8 * i));
    return m;
  }

  /// Parse "aa:bb:cc:dd:ee:ff" (also accepts '-' separators).
  static std::optional<MacAddress> parse(std::string_view text);

  std::string to_string() const;

  constexpr const std::array<std::uint8_t, kBytes>& bytes() const {
    return bytes_;
  }

  constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto b : bytes_) v = (v << 8) | b;
    return v;
  }

  /// The 24-bit Organizationally Unique Identifier (first three octets).
  constexpr std::uint32_t oui() const {
    return (static_cast<std::uint32_t>(bytes_[0]) << 16) |
           (static_cast<std::uint32_t>(bytes_[1]) << 8) | bytes_[2];
  }

  /// U/L bit: true when the address is locally administered (randomised),
  /// i.e. NOT a globally unique vendor-assigned address.
  constexpr bool locally_administered() const { return bytes_[0] & 0x02; }

  /// I/G bit: true for multicast.
  constexpr bool multicast() const { return bytes_[0] & 0x01; }

  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) = default;

 private:
  std::array<std::uint8_t, kBytes> bytes_;
};

/// Modified EUI-64: expand a MAC into a 64-bit IID — insert ff:fe between
/// the OUI and NIC halves and flip the U/L bit (RFC 4291 Appendix A).
std::uint64_t eui64_iid_from_mac(const MacAddress& mac);

/// Structural test: does this IID carry the ff:fe EUI-64 marker?
bool iid_looks_like_eui64(std::uint64_t iid);

/// Inverse of eui64_iid_from_mac. Returns nullopt when the ff:fe marker is
/// absent. Note: a matching marker does not *prove* SLAAC origin, matching
/// the caveat in the paper that MAC extraction is heuristic.
std::optional<MacAddress> mac_from_eui64_iid(std::uint64_t iid);

/// Convenience over a whole address.
std::optional<MacAddress> extract_mac(const Ipv6Address& addr);

/// Classification of an address's MAC embedding used by Figure 4.
enum class MacEmbedding {
  kNone,             // IID has no ff:fe marker
  kGlobalListed,     // EUI-64, unique bit set, OUI found in IEEE registry
  kGlobalUnlisted,   // EUI-64, unique bit set, OUI not registered
  kLocal,            // EUI-64 marker but locally administered MAC
};

std::string_view to_string(MacEmbedding e);

struct MacAddressHash {
  std::size_t operator()(const MacAddress& m) const {
    return std::hash<std::uint64_t>{}(m.to_u64() * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace tts::net

template <>
struct std::hash<tts::net::MacAddress> {
  std::size_t operator()(const tts::net::MacAddress& m) const {
    return tts::net::MacAddressHash{}(m);
  }
};
