#include "scan/engine.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/flight.hpp"
#include "util/format.hpp"

namespace tts::scan {

ScanEngine::ScanEngine(simnet::Network& network, ResultStore& results,
                       ScanEngineConfig config)
    : network_(network),
      results_(results),
      config_(std::move(config)),
      rng_(config_.seed),
      queue_(config_.max_pending),
      pump_timer_(network.events(), [this] { pump(); },
                  network.events().register_category("scan_pump")) {
  if (!config_.budget && config_.max_pps <= 0)
    throw std::invalid_argument("ScanEngine: max_pps must be positive");
  if (!(config_.budget_weight > 0) || !std::isfinite(config_.budget_weight))
    throw std::invalid_argument(
        "ScanEngine: budget_weight must be positive and finite");
  if (config_.min_protocol_delay < 0)
    throw std::invalid_argument(
        "ScanEngine: min_protocol_delay must be non-negative");
  if (config_.max_protocol_delay < config_.min_protocol_delay)
    throw std::invalid_argument(
        "ScanEngine: inverted protocol-delay range (max < min)");
  if (config_.max_pending == 0)
    throw std::invalid_argument("ScanEngine: max_pending must be >= 1");
  if (config_.probe_timeout <= 0 || config_.connect_timeout <= 0)
    throw std::invalid_argument("ScanEngine: timeouts must be positive");
  if (config_.connect_timeout > config_.probe_timeout)
    throw std::invalid_argument(
        "ScanEngine: connect_timeout must not exceed probe_timeout");

  for (std::size_t p = 0; p < kProtocolCount; ++p) {
    retry_[p] = config_.retry_by_proto[p].value_or(config_.retry);
    // ScanIntent::attempt is 8-bit; anything near that is a config bug.
    if (retry_[p].max_retries > 100)
      throw std::invalid_argument("ScanEngine: max_retries too large");
  }
  if (config_.breaker.enabled) {
    if (config_.breaker.prefix_len > 128)
      throw std::invalid_argument("ScanEngine: breaker prefix_len > 128");
    breaker_.emplace(config_.breaker);
  }

  network_.attach(config_.scanner_address);
  scanners_.push_back(make_http_scanner(false, config_.sni));
  scanners_.push_back(make_http_scanner(true, config_.sni));
  scanners_.push_back(make_ssh_scanner());
  scanners_.push_back(make_mqtt_scanner(false, config_.sni));
  scanners_.push_back(make_mqtt_scanner(true, config_.sni));
  scanners_.push_back(make_amqp_scanner(false, config_.sni));
  scanners_.push_back(make_amqp_scanner(true, config_.sni));
  scanners_.push_back(make_coap_scanner());
  for (const auto& scanner : scanners_) {
    auto idx = static_cast<std::size_t>(scanner->protocol());
    assert(!by_proto_[idx] && "duplicate scanner for protocol");
    by_proto_[idx] = scanner.get();
    scanner->set_timeouts(config_.probe_timeout, config_.connect_timeout);
  }
  if (config_.tracer) {
    for (std::size_t p = 0; p < kProtocolCount; ++p) {
      span_ids_[p] = config_.tracer->intern(
          util::cat("probe/", label(static_cast<Protocol>(p))));
      lifecycle_ids_[p] = config_.tracer->intern(
          util::cat("target/", label(static_cast<Protocol>(p))));
    }
    stage_name_ = config_.tracer->intern("probe/stage");
    grant_name_ = config_.tracer->intern("probe/grant");
    retry_name_ = config_.tracer->intern("probe/retry");
    shed_name_ = config_.tracer->intern("probe/shed");
    record_name_ = config_.tracer->intern("probe/record");
    quarantine_name_ = config_.tracer->intern("probe/quarantine");
  }
  // Route transitions commit at window barriers; an announce is the moment
  // quarantined targets become launchable again.
  network_.subscribe_routes([this](const net::Ipv6Prefix& /*prefix*/,
                                   simnet::RouteOp op, simnet::SimTime at) {
    if (op == simnet::RouteOp::kAnnounce) drain_quarantine(at);
  });
  if (breaker_ && config_.flight) {
    obs::FlightRecorder* flight = config_.flight;
    breaker_->set_transition_observer(
        [flight](const net::Ipv6Address& prefix,
                 CircuitBreakerSet::State /*from*/,
                 CircuitBreakerSet::State to, simnet::SimTime /*now*/) {
          obs::FlightKind kind =
              to == CircuitBreakerSet::State::kOpen
                  ? obs::FlightKind::kBreakerOpen
                  : to == CircuitBreakerSet::State::kHalfOpen
                        ? obs::FlightKind::kBreakerHalfOpen
                        : obs::FlightKind::kBreakerClose;
          flight->record(kind, /*detail=*/0, /*trace=*/0,
                         static_cast<std::int64_t>(prefix.hi64()),
                         static_cast<std::int64_t>(prefix.lo64()));
          if (kind == obs::FlightKind::kBreakerOpen)
            flight->trigger("breaker-open");
        });
    obs::FlightRecorder::NoteId as_note = flight->note("as");
    breaker_->set_as_transition_observer(
        [flight, as_note](const net::Ipv6Address& as_key, bool open,
                          simnet::SimTime /*now*/) {
          flight->record(open ? obs::FlightKind::kBreakerOpen
                              : obs::FlightKind::kBreakerClose,
                         as_note, /*trace=*/0,
                         static_cast<std::int64_t>(as_key.hi64()),
                         static_cast<std::int64_t>(as_key.lo64()));
          if (open) flight->trigger("as-breaker-open");
        });
  }

  if (config_.budget) {
    budget_ = config_.budget;
  } else {
    own_budget_ = std::make_unique<SharedBudget>(SharedBudgetConfig{
        config_.max_pps, kPumpSlackSlots, config_.registry});
    budget_ = own_budget_.get();
  }
  budget_id_ =
      budget_->add_client(std::string(label(config_.dataset)),
                          config_.budget_weight, [this] { arm_pump(); });
  enroll_metrics();
}

ScanEngine::~ScanEngine() {
  budget_->remove_client(budget_id_);
  if (config_.registry) config_.registry->drop_owner(this);
  network_.detach(config_.scanner_address);
}

void ScanEngine::enroll_metrics() {
  obs::Registry* reg = config_.registry;
  if (!reg) return;
  obs::Labels ds{{"dataset", std::string(label(config_.dataset))}};
  reg->enroll(submitted_, "scan_submitted", ds, this);
  reg->enroll(skipped_blackout_, "scan_skipped_blackout", ds, this);
  reg->enroll(backpressure_, "scan_backpressure_events", ds, this);
  reg->enroll(no_scanner_, "scan_no_scanner", ds, this);
  reg->enroll(probes_launched_, "scan_probes_launched", ds, this);
  reg->enroll(probes_completed_, "scan_probes_completed", ds, this);
  reg->enroll(pump_wakes_, "scan_pump_wakes", ds, this);
  reg->enroll(refill_deferred_, "scan_refill_deferred", ds, this);
  reg->enroll(retries_, "scan_retries", ds, this);
  reg->enroll(retry_success_, "scan_retry_success_total", ds, this);
  reg->enroll(retry_dropped_, "scan_retry_dropped", ds, this);
  reg->enroll(route_deferred_, "scan_route_deferred", ds, this);
  reg->enroll(route_requeued_, "scan_route_requeued", ds, this);
  reg->enroll(retry_delay_, "scan_retry_delay_us", ds, this);
  if (breaker_) breaker_->enroll(*reg, ds, this);
  reg->enroll(token_wait_, "scan_token_wait_us", ds, this);
  reg->enroll(queue_delay_, "scan_queue_delay_us", ds, this);
  reg->enroll(probe_rtt_, "scan_probe_rtt_us", ds, this);
  reg->enroll(pending_gauge_, "scan_pending_depth", ds, this);
  reg->enroll(pending_peak_gauge_, "scan_pending_peak", ds, this);
  for (std::size_t p = 0; p < kProtocolCount; ++p) {
    obs::Labels labeled = ds;
    labeled.emplace_back("proto",
                         std::string(label(static_cast<Protocol>(p))));
    reg->enroll(launched_by_proto_[p], "scan_probes_launched", labeled, this);
    reg->enroll(completed_by_proto_[p], "scan_probes_completed",
                std::move(labeled), this);
  }
}

SubmitResult ScanEngine::try_submit(const net::Ipv6Address& target,
                                    Dataset lane) {
  simnet::SimTime now = network_.now();
  auto it = last_scan_.find(target);
  if (it != last_scan_.end() && now - it->second < config_.rescan_blackout) {
    skipped_blackout_.inc();
    return SubmitResult::kBlackout;
  }
  if (queue_.full(lane)) {
    // Backpressure: the target is NOT blackout-marked, so the feed may
    // resubmit it once the lane drains.
    backpressure_.inc();
    if (on_backpressure_) on_backpressure_(lane);
    return SubmitResult::kQueueFull;
  }
  last_scan_[target] = now;
  stage_target(target, lane);
  arm_pump();
  return SubmitResult::kAccepted;
}

void ScanEngine::submit_bulk(const std::vector<net::Ipv6Address>& targets) {
  // Wrap the list in a cursor source: the pump pulls it chunk-by-chunk as
  // staging room frees up instead of scheduling the whole sweep up front.
  struct Cursor {
    std::vector<net::Ipv6Address> targets;
    std::size_t next = 0;
  };
  auto cursor = std::make_shared<Cursor>(Cursor{targets, 0});
  add_source([cursor](std::size_t max_n) {
    std::size_t n = std::min(max_n, cursor->targets.size() - cursor->next);
    auto first = cursor->targets.begin() +
                 static_cast<std::ptrdiff_t>(cursor->next);
    std::vector<net::Ipv6Address> out(first,
                                      first + static_cast<std::ptrdiff_t>(n));
    cursor->next += n;
    return out;
  });
}

void ScanEngine::add_source(SourceFn fn, Dataset lane) {
  sources_.push_back(Source{std::move(fn), lane});
  arm_pump();
}

void ScanEngine::stage_target(const net::Ipv6Address& target, Dataset lane) {
  ScanIntent intent{.not_before = network_.now(),
                    .dataset = lane,
                    .chain_pos = 0,
                    .attempt = 0,
                    .target = target};
  begin_intent_trace(intent);
  bool ok = queue_.push(std::move(intent));
  assert(ok && "stage_target called on a full lane");
  (void)ok;
  submitted_.inc();
  pending_gauge_.set(static_cast<std::int64_t>(queue_.size()));
  pending_peak_gauge_.set(static_cast<std::int64_t>(queue_.peak()));
}

void ScanEngine::stage_successor(const ScanIntent& intent,
                                 simnet::SimTime slot) {
  std::size_t next = static_cast<std::size_t>(intent.chain_pos) + 1;
  if (next >= scanners_.size()) return;
  // Staggered inter-protocol delay (Appendix A.2.1: 10 s to 10 min between
  // the protocols of one target), relative to the previous probe's launch.
  simnet::SimDuration span =
      config_.max_protocol_delay - config_.min_protocol_delay;
  simnet::SimDuration jitter =
      span > 0 ? static_cast<simnet::SimDuration>(
                     rng_.below(static_cast<std::uint64_t>(span)))
               : 0;
  ScanIntent successor{.not_before = slot + config_.min_protocol_delay + jitter,
                       .dataset = intent.dataset,
                       .chain_pos = static_cast<std::uint8_t>(next),
                       .attempt = 0,
                       .target = intent.target};
  begin_intent_trace(successor);
  bool ok = queue_.push(std::move(successor));
  assert(ok && "successor push must fit: its predecessor just left");
  (void)ok;
}

void ScanEngine::begin_intent_trace(ScanIntent& intent) {
  intent.trace = mint_trace(intent.dataset);
  obs::Tracer* tracer = config_.tracer;
  if (!tracer || !tracer->enabled()) return;
  Protocol proto = scanners_[intent.chain_pos]->protocol();
  intent.lifecycle_span =
      tracer->open(lifecycle_ids_[static_cast<std::size_t>(proto)],
                   intent.trace);
  intent.stage_span = tracer->open(stage_name_, intent.trace);
}

void ScanEngine::end_stage_span(const ScanIntent& intent,
                                obs::Tracer::NameId how) {
  obs::Tracer* tracer = config_.tracer;
  if (!tracer || intent.stage_span == obs::Tracer::kNoSpan) return;
  tracer->close(intent.stage_span);
  tracer->instant(how, intent.trace);
}

void ScanEngine::refill_from_sources() {
  for (std::size_t i = 0; i < sources_.size();) {
    Source& source = sources_[i];
    bool drained = false;
    std::size_t room;
    while ((room = queue_.free_slots(source.lane)) > 0) {
      std::vector<net::Ipv6Address> batch = source.fn(room);
      if (batch.empty()) {  // a source is dry when it returns nothing
        drained = true;
        break;
      }
      simnet::SimTime now = network_.now();
      for (const auto& target : batch) {
        auto it = last_scan_.find(target);
        if (it != last_scan_.end() &&
            now - it->second < config_.rescan_blackout) {
          skipped_blackout_.inc();
          continue;
        }
        last_scan_[target] = now;
        stage_target(target, source.lane);
      }
    }
    if (drained)
      sources_.erase(sources_.begin() + static_cast<std::ptrdiff_t>(i));
    else
      ++i;
  }
}

std::optional<simnet::SimTime> ScanEngine::next_wake() const {
  // A source with staging room wants a pull — but staging is useless
  // before a token accrues, so wake at the budget's suggestion instead of
  // immediately (budget-aware source scheduling: bulk feeds skip staging
  // churn on wakes that cannot launch anything).
  for (const Source& source : sources_)
    if (queue_.free_slots(source.lane) > 0)
      return budget_->suggested_wake(budget_id_, network_.now());
  auto due = queue_.next_not_before();
  if (!due) return std::nullopt;
  simnet::SimTime now = network_.now();
  if (*due > now) return *due;
  // Due now but token-blocked: the budget says when to retry, folding in
  // the burst-bank batching slack when no peer is contending.
  return budget_->suggested_wake(budget_id_, now);
}

void ScanEngine::arm_pump() {
  // Keep the budget's view of this engine current on every (re-)arm: the
  // backlog flag is what peers' fair shares and wake-ups key off.
  simnet::SimTime now = network_.now();
  budget_->set_backlog(budget_id_, queue_.has_due(now), now);
  auto wake = next_wake();
  if (!wake) {
    pump_timer_.cancel();
    return;
  }
  pump_timer_.arm(*wake);
}

void ScanEngine::pump() {
  const simnet::SimTime now = network_.now();
  pump_wakes_.inc();
  // Budget-aware source scheduling: staging from a bulk source is wasted
  // work on a wake that cannot launch (no token accrued — e.g. a peer's
  // wake-up nudge landed early). Skip the refill and let next_wake() re-arm
  // at the budget's suggestion; already-staged due intents still launch
  // below when a token turns out to be available.
  bool token_ready = budget_->next_slot(budget_id_, now) <= now;
  if (token_ready)
    refill_from_sources();
  else if (!sources_.empty())
    refill_deferred_.inc();
  // Launch every due intent the budget grants a token for, inline: one
  // timer wake covers the whole banked batch (up to burst_slots + 1), so a
  // saturated sweep pays ~1 event per batch instead of one per probe.
  if (!quarantine_.empty()) drain_quarantine(now);
  while (const ScanIntent* next = queue_.peek_due(now)) {
    if (network_.route_withdrawn(next->target, now)) {
      // Withdrawn route: the target is *unreachable*, not unresponsive.
      // Park the intent (no token spent, no record synthesized) until the
      // route's re-announcement re-stages it.
      ScanIntent intent = *queue_.pull_due(now);
      end_stage_span(intent, quarantine_name_);
      route_deferred_.inc();
      quarantine_.push_back(std::move(intent));
      continue;
    }
    if (breaker_ && !breaker_->would_admit(next->target, now)) {
      // Open breaker: shed before spending a token, so a dead prefix costs
      // no budget and the freed slots go to responsive space.
      ScanIntent intent = *queue_.pull_due(now);
      end_stage_span(intent, shed_name_);
      shed_probe(intent, now);
      continue;
    }
    std::optional<simnet::SimTime> slot = budget_->try_acquire(budget_id_, now);
    if (!slot) break;  // next token not accrued, or a contending peer's turn
    ScanIntent intent = *queue_.pull_due(now);
    if (breaker_) breaker_->note_launch(intent.target, now);
    token_wait_.record(now - *slot);
    queue_delay_.record(now - intent.not_before);
    end_stage_span(intent, grant_name_);
    // Only a first attempt advances the protocol chain: a retry's
    // predecessor already staged the successor when it first launched.
    if (intent.attempt == 0) stage_successor(intent, now);
    launch(intent, now);
  }
  if (token_ready)
    refill_from_sources();  // freed lane slots admit the next bulk chunk
  pending_gauge_.set(static_cast<std::int64_t>(queue_.size()));
  pending_peak_gauge_.set(static_cast<std::int64_t>(queue_.peak()));
  arm_pump();
}

void ScanEngine::launch(const ScanIntent& intent, simnet::SimTime at) {
  Protocol proto = scanners_[intent.chain_pos]->protocol();
  ProtocolScanner* scanner = by_proto_[static_cast<std::size_t>(proto)];
  if (!scanner) {
    no_scanner_.inc();
    assert(!"no scanner registered for staged protocol");
    return;
  }

  probes_launched_.inc();
  launched_by_proto_[static_cast<std::size_t>(proto)].inc();
  auto src_port =
      static_cast<std::uint16_t>(1024 + (next_ephemeral_++ % 60000));

  ScanRecord base;
  base.dataset = intent.dataset;
  base.protocol = proto;
  base.target = intent.target;
  base.at = at;
  simnet::Endpoint src{config_.scanner_address, src_port};
  obs::Tracer::SpanId span = obs::Tracer::kNoSpan;
  if (config_.tracer)
    span = config_.tracer->open(span_ids_[static_cast<std::size_t>(proto)],
                                intent.trace);
  scanner->probe(network_, src, std::move(base),
                 [this, intent, proto, span](ScanRecord r) {
                   probes_completed_.inc();
                   completed_by_proto_[static_cast<std::size_t>(proto)].inc();
                   probe_rtt_.record(network_.now() - r.at);
                   if (config_.tracer) config_.tracer->close(span);
                   finish_probe(intent, std::move(r));
                 });
}

void ScanEngine::finish_probe(const ScanIntent& intent, ScanRecord record) {
  simnet::SimTime now = network_.now();
  bool timeout = record.outcome == Outcome::kTimeout;
  // Any answer — even an RST or garbage bytes — proves the path carries
  // packets; only silence counts against the prefix.
  if (breaker_) breaker_->on_outcome(record.target, !timeout, now);
  if (intent.attempt > 0 && record.outcome == Outcome::kSuccess)
    retry_success_.inc();
  const RetryPolicy& policy = retry_[static_cast<std::size_t>(record.protocol)];
  if (timeout && intent.attempt < policy.max_retries) {
    std::uint32_t attempt = intent.attempt + 1u;
    simnet::SimDuration delay = policy.backoff(attempt, rng_);
    ScanIntent again = intent;
    again.attempt = static_cast<std::uint8_t>(attempt);
    again.not_before = now + delay;
    // The retry re-enters staging on the same trace: mark the re-stage and
    // open a fresh staging span (the lifecycle span rides along in `again`).
    if (config_.tracer && intent.trace != 0) {
      config_.tracer->instant(retry_name_, intent.trace);
      again.stage_span = config_.tracer->open(stage_name_, intent.trace);
    }
    if (queue_.push(again)) {
      // Re-staged through the queue: pacing and the shared budget govern
      // the retry like any first attempt. The intermediate timeout is
      // suppressed — each probe chain slot tallies exactly one outcome.
      retries_.inc();
      retry_delay_.record(delay);
      if (config_.flight)
        config_.flight->record(obs::FlightKind::kRetryStaged, /*detail=*/0,
                               intent.trace, attempt, delay);
      pending_gauge_.set(static_cast<std::int64_t>(queue_.size()));
      pending_peak_gauge_.set(static_cast<std::int64_t>(queue_.peak()));
      arm_pump();
      return;
    }
    retry_dropped_.inc();  // lane full: give up, record the timeout
    if (config_.tracer) config_.tracer->close(again.stage_span);
    if (config_.flight)
      config_.flight->record(obs::FlightKind::kRetryDropped, /*detail=*/0,
                             intent.trace, attempt);
  }
  if (config_.tracer && intent.trace != 0) {
    config_.tracer->instant(record_name_, intent.trace);
    config_.tracer->close(intent.lifecycle_span);
  }
  results_.add(std::move(record));
}

void ScanEngine::drain_quarantine(simnet::SimTime now) {
  if (quarantine_.empty()) return;
  std::size_t kept = 0;
  bool staged = false;
  for (std::size_t i = 0; i < quarantine_.size(); ++i) {
    ScanIntent& intent = quarantine_[i];
    if (network_.route_withdrawn(intent.target, now)) {
      quarantine_[kept++] = std::move(intent);  // still unrouted: keep parked
      continue;
    }
    ScanIntent again = std::move(intent);
    again.not_before = now;
    // Back into staging on the same trace: a fresh staging span covers the
    // re-queued wait, exactly like a retry re-stage.
    if (config_.tracer && again.trace != 0)
      again.stage_span = config_.tracer->open(stage_name_, again.trace);
    if (queue_.push(again)) {
      route_requeued_.inc();
      staged = true;
      continue;
    }
    // Lane full: stay quarantined; the next announce commit or pump wake
    // retries, so the intent cannot strand.
    if (config_.tracer) config_.tracer->close(again.stage_span);
    again.stage_span = obs::Tracer::kNoSpan;
    quarantine_[kept++] = std::move(again);
  }
  quarantine_.resize(kept);
  if (staged) {
    pending_gauge_.set(static_cast<std::int64_t>(queue_.size()));
    pending_peak_gauge_.set(static_cast<std::int64_t>(queue_.peak()));
    arm_pump();
  }
}

void ScanEngine::shed_probe(const ScanIntent& intent, simnet::SimTime now) {
  breaker_->shed();
  if (config_.flight)
    config_.flight->record(obs::FlightKind::kBreakerShed, /*detail=*/0,
                           intent.trace,
                           static_cast<std::int64_t>(
                               breaker_->key_of(intent.target).hi64()),
                           static_cast<std::int64_t>(
                               breaker_->key_of(intent.target).lo64()));
  if (config_.tracer && intent.trace != 0) {
    config_.tracer->instant(record_name_, intent.trace);
    config_.tracer->close(intent.lifecycle_span);
  }
  // The chain continues: a later protocol's probe is the half-open trial
  // that eventually re-closes the breaker. (A shed retry's successor was
  // already staged by its first attempt.)
  if (intent.attempt == 0) stage_successor(intent, now);
  ScanRecord record;
  record.dataset = intent.dataset;
  record.protocol = scanners_[intent.chain_pos]->protocol();
  record.target = intent.target;
  record.at = now;
  record.outcome = Outcome::kTimeout;
  results_.add(std::move(record));
}

}  // namespace tts::scan
