// Section 6 (Discussion): certificate/key reuse across ASes and the
// campaign hit rates.
#include "analysis/key_reuse.hpp"
#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();

  auto ntp = analysis::http_key_reuse(study.results(), scan::Dataset::kNtp,
                                      study.registry());
  auto hit = analysis::http_key_reuse(study.results(),
                                      scan::Dataset::kHitlist,
                                      study.registry());

  util::TextTable t("Section 6: HTTPS key reuse (status-200, keys in >2 ASes)");
  t.set_header({"", "Our Data", "TUM IPv6 Hitlist"});
  t.add_row({"reused keys", util::grouped(ntp.reused_keys),
             util::grouped(hit.reused_keys)});
  t.add_row({"IPs on reused keys", util::grouped(ntp.ips_on_reused_keys),
             util::grouped(hit.ips_on_reused_keys)});
  t.add_row({"most-used key: IPs", util::grouped(ntp.most_used_key_ips),
             util::grouped(hit.most_used_key_ips)});
  t.add_row({"most-used key: ASes", util::grouped(ntp.most_used_key_ases),
             util::grouped(hit.most_used_key_ases)});
  t.add_row({"most widespread key: ASes",
             util::grouped(ntp.most_widespread_key_ases),
             util::grouped(hit.most_widespread_key_ases)});
  t.add_note("Paper: NTP side 91 773 IPs on 304 reused keys (most-used key: "
             "45 377 hosts in 27 ASes);");
  t.add_note("hitlist side 143 460 IPs on 3 846 keys (most-used: 23 303 "
             "hosts in 108 ASes).");
  t.render(std::cout);

  double ntp_per_key =
      ntp.reused_keys
          ? static_cast<double>(ntp.ips_on_reused_keys) /
                static_cast<double>(ntp.reused_keys)
          : 0;
  double hit_per_key =
      hit.reused_keys
          ? static_cast<double>(hit.ips_on_reused_keys) /
                static_cast<double>(hit.reused_keys)
          : 0;
  std::cout << "\nAddresses per reused key: NTP "
            << util::fixed(ntp_per_key, 1) << " vs hitlist "
            << util::fixed(hit_per_key, 1) << " [paper: 302 vs 37]\n";

  std::cout << "\nHit rate (probes answered / probes sent):\n";
  std::cout << "  NTP campaign: " << util::permille(study.ntp_hit_rate())
            << "  [paper: 0.42‰ at Internet scale]\n";

  bool pass = ntp.reused_keys > 0 &&
              (hit.reused_keys == 0 || ntp_per_key > hit_per_key);
  std::cout << "Shape check (NTP reuse more concentrated): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
