// HTTP(S) banner grab: GET / with no Host header (scans are address-based),
// optional TLS. Records status, Server header, and the page <title> that
// the device-type analysis groups (Section 4.3.1).
#include "proto/http.hpp"
#include "scan/probe_util.hpp"
#include "scan/tls.hpp"

namespace tts::scan {

namespace {

using detail::ProbeStatePtr;
using simnet::TcpConnection;

void record_http_response(const ProbeStatePtr& state,
                          std::span<const std::uint8_t> wire) {
  auto response = proto::HttpResponse::parse(wire);
  if (!response) {
    state->finish(Outcome::kMalformed);
    return;
  }
  state->record.http_status = response->status;
  state->record.http_server = response->server;
  auto title = proto::extract_title(response->body);
  state->record.http_has_title = title.has_value();
  state->record.http_title = title.value_or("");
  state->finish(Outcome::kSuccess);
}

class HttpScanner final : public ProtocolScanner {
 public:
  HttpScanner(bool tls, std::string sni)
      : tls_(tls), sni_(std::move(sni)) {}

  Protocol protocol() const override {
    return tls_ ? Protocol::kHttps : Protocol::kHttp;
  }

  void probe(simnet::Network& network, const simnet::Endpoint& src,
             ScanRecord base, DoneFn done) override {
    auto state = detail::make_probe_state(std::move(base), std::move(done));
    detail::arm_guard(network, state, probe_timeout_);

    simnet::Endpoint dst{state->record.target, port_of(protocol())};
    bool tls = tls_;
    std::string sni = sni_;
    network.connect_tcp(
        src, dst,
        [state, tls, sni](simnet::TcpConnectionPtr conn, bool refused) {
          if (!conn) {
            state->finish(refused ? Outcome::kRefused : Outcome::kTimeout);
            return;
          }
          state->conn = conn;
          conn->set_on_close(TcpConnection::Side::kClient, [state] {
            // Peer closed before we got a full response.
            if (!state->finished) state->finish(Outcome::kMalformed);
          });

          proto::HttpRequest request;
          request.host = sni;  // empty unless the campaign supplies names

          if (!tls) {
            conn->set_on_data(TcpConnection::Side::kClient,
                              [state](std::vector<std::uint8_t> data) {
                                record_http_response(state, data);
                              });
            conn->send(TcpConnection::Side::kClient, request.serialize());
            return;
          }

          auto session = TlsClientSession::create(conn, sni);
          session->set_on_app_data([state](std::vector<std::uint8_t> data) {
            record_http_response(state, data);
          });
          session->handshake([state, session,
                              request](TlsHandshakeResult result) {
            if (!result.ok) {
              state->finish(Outcome::kTlsFailed);
              return;
            }
            state->record.certificate = result.certificate;
            session->send(request.serialize());
          });
          state->record.http_status = 0;
          // Anchors the session to the probe AND breaks the closure
          // cycles (session callbacks capture state) at finish time.
          state->cleanup = [session] { session->drop_callbacks(); };
        },
        connect_timeout_);
  }

 private:
  bool tls_;
  std::string sni_;
};

}  // namespace

std::unique_ptr<ProtocolScanner> make_http_scanner(bool tls,
                                                   std::string sni) {
  return std::make_unique<HttpScanner>(tls, std::move(sni));
}

}  // namespace tts::scan
