// IPv6 address and prefix types.
//
// Addresses are 16 opaque bytes with value semantics. Parsing accepts the
// RFC 4291 textual forms (full, "::"-compressed, mixed case); formatting
// follows RFC 5952 (lowercase, longest zero-run compressed, no leading
// zeroes). Prefix arithmetic on /32../64 networks underpins the network
// aggregation analyses (Tables 5 and 6).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace tts::net {

class Ipv6Address {
 public:
  static constexpr std::size_t kBytes = 16;

  /// The unspecified address "::".
  constexpr Ipv6Address() : bytes_{} {}

  static constexpr Ipv6Address from_bytes(
      const std::array<std::uint8_t, kBytes>& b) {
    Ipv6Address a;
    a.bytes_ = b;
    return a;
  }

  /// Build from the high (network) and low (interface identifier) halves.
  static constexpr Ipv6Address from_halves(std::uint64_t hi,
                                           std::uint64_t lo) {
    Ipv6Address a;
    for (int i = 0; i < 8; ++i) {
      a.bytes_[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(hi >> (56 - 8 * i));
      a.bytes_[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(lo >> (56 - 8 * i));
    }
    return a;
  }

  /// Parse textual form; returns nullopt on any syntax error.
  static std::optional<Ipv6Address> parse(std::string_view text);

  /// RFC 5952 canonical text.
  std::string to_string() const;

  constexpr const std::array<std::uint8_t, kBytes>& bytes() const {
    return bytes_;
  }

  constexpr std::uint64_t hi64() const { return read64(0); }
  constexpr std::uint64_t lo64() const { return read64(8); }

  /// Interface identifier = low 64 bits.
  constexpr std::uint64_t iid() const { return lo64(); }

  /// The IID bytes as a span (for entropy computation).
  std::span<const std::uint8_t, 8> iid_bytes() const {
    return std::span<const std::uint8_t, 8>(bytes_.data() + 8, 8);
  }

  /// Replace the low 64 bits.
  constexpr Ipv6Address with_iid(std::uint64_t iid) const {
    return from_halves(hi64(), iid);
  }

  /// Zero all bits below `prefix_len` (0..128).
  Ipv6Address masked(unsigned prefix_len) const;

  constexpr bool is_unspecified() const {
    for (auto b : bytes_)
      if (b != 0) return false;
    return true;
  }

  friend constexpr auto operator<=>(const Ipv6Address&,
                                    const Ipv6Address&) = default;

 private:
  constexpr std::uint64_t read64(std::size_t off) const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | bytes_[off + i];
    return v;
  }

  std::array<std::uint8_t, kBytes> bytes_;
};

struct Ipv6AddressHash {
  std::size_t operator()(const Ipv6Address& a) const {
    // Addresses are well-spread already in the low half (IIDs); mix both
    // halves so structured addresses don't collide.
    std::uint64_t h = a.hi64() * 0x9e3779b97f4a7c15ULL;
    h ^= a.lo64() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// A CIDR prefix: an address with all host bits zero plus a length.
class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() : len_(0) {}
  Ipv6Prefix(const Ipv6Address& addr, unsigned len);

  /// Parse "2001:db8::/32"; nullopt on error (including host bits set).
  static std::optional<Ipv6Prefix> parse(std::string_view text);

  const Ipv6Address& address() const { return addr_; }
  unsigned length() const { return len_; }

  bool contains(const Ipv6Address& a) const;
  bool contains(const Ipv6Prefix& other) const;

  std::string to_string() const;

  friend auto operator<=>(const Ipv6Prefix&, const Ipv6Prefix&) = default;

 private:
  Ipv6Address addr_;
  unsigned len_;
};

struct Ipv6PrefixHash {
  std::size_t operator()(const Ipv6Prefix& p) const {
    return Ipv6AddressHash{}(p.address()) * 131 + p.length();
  }
};

/// Convenience: the enclosing /48, /56, /64 (etc.) network of an address.
Ipv6Prefix network_of(const Ipv6Address& a, unsigned prefix_len);

}  // namespace tts::net

template <>
struct std::hash<tts::net::Ipv6Address> {
  std::size_t operator()(const tts::net::Ipv6Address& a) const {
    return tts::net::Ipv6AddressHash{}(a);
  }
};

template <>
struct std::hash<tts::net::Ipv6Prefix> {
  std::size_t operator()(const tts::net::Ipv6Prefix& p) const {
    return tts::net::Ipv6PrefixHash{}(p);
  }
};
