#include "analysis/broker_analysis.hpp"

#include <unordered_map>
#include <unordered_set>

namespace tts::analysis {

namespace {

std::pair<scan::Protocol, scan::Protocol> protocols_of(BrokerKind kind) {
  return kind == BrokerKind::kMqtt
             ? std::make_pair(scan::Protocol::kMqtt, scan::Protocol::kMqtts)
             : std::make_pair(scan::Protocol::kAmqp, scan::Protocol::kAmqps);
}

template <typename KeyFn>
AccessControlStats tally(const scan::ResultStore& results,
                         scan::Dataset dataset, BrokerKind kind, KeyFn key) {
  auto [plain, tls] = protocols_of(kind);
  // A unit is "secured" if every observation of it enforced auth — a broker
  // reachable open on any port is open.
  std::unordered_map<std::uint64_t, bool> auth_by_unit;
  for (scan::Protocol proto : {plain, tls}) {
    for (const auto* r : results.successes(dataset, proto)) {
      if (!r->broker_auth_required) continue;
      auto unit = key(*r);
      if (!unit) continue;
      auto [it, inserted] = auth_by_unit.emplace(*unit,
                                                 *r->broker_auth_required);
      if (!inserted) it->second = it->second && *r->broker_auth_required;
    }
  }
  AccessControlStats stats;
  stats.total = auth_by_unit.size();
  for (const auto& [unit, auth] : auth_by_unit)
    if (auth) ++stats.with_auth;
  return stats;
}

}  // namespace

AccessControlStats access_control_by_address(const scan::ResultStore& results,
                                             scan::Dataset dataset,
                                             BrokerKind kind) {
  return tally(results, dataset, kind,
               [](const scan::ScanRecord& r) -> std::optional<std::uint64_t> {
                 return net::Ipv6AddressHash{}(r.target);
               });
}

AccessControlStats access_control_by_certificate(
    const scan::ResultStore& results, scan::Dataset dataset,
    BrokerKind kind) {
  return tally(results, dataset, kind,
               [](const scan::ScanRecord& r) -> std::optional<std::uint64_t> {
                 if (!r.certificate) return std::nullopt;
                 return r.certificate->fingerprint;
               });
}

AccessControlStats access_control_by_network(const scan::ResultStore& results,
                                             scan::Dataset dataset,
                                             BrokerKind kind,
                                             unsigned prefix_len) {
  return tally(results, dataset, kind,
               [prefix_len](const scan::ScanRecord& r)
                   -> std::optional<std::uint64_t> {
                 return net::Ipv6PrefixHash{}(
                     net::Ipv6Prefix(r.target, prefix_len));
               });
}

}  // namespace tts::analysis
