// Figure 4: distribution of the collecting NTP server for addresses by
// MAC-embedding class — listed-OUI (largely AVM) addresses concentrate on
// the European servers.
#include <algorithm>
#include <array>

#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();
  const auto& per_server = study.eui64().per_server_embedding();
  auto servers = study.pool().our_servers();

  const std::array<net::MacEmbedding, 3> classes = {
      net::MacEmbedding::kGlobalListed, net::MacEmbedding::kGlobalUnlisted,
      net::MacEmbedding::kLocal};

  // Column totals for shares.
  std::array<std::uint64_t, 3> totals{};
  for (const auto& [server, counts] : per_server)
    for (std::size_t c = 0; c < classes.size(); ++c)
      totals[c] += counts[static_cast<std::size_t>(classes[c])];

  util::TextTable t(
      "Figure 4: collecting server by MAC embedding (column shares)");
  t.set_header({"Server", "listed OUI", "unlisted (unique bit)",
                "locally administered"});

  const std::vector<std::string> kEurope = {"DE", "ES", "NL", "GB", "PL"};
  std::array<double, 3> europe_share{};
  for (const auto& server : servers) {
    std::vector<std::string> cells = {server.country};
    auto it = per_server.find(server.id);
    for (std::size_t c = 0; c < classes.size(); ++c) {
      std::uint64_t n =
          it == per_server.end()
              ? 0
              : it->second[static_cast<std::size_t>(classes[c])];
      double share = totals[c] ? static_cast<double>(n) /
                                     static_cast<double>(totals[c])
                               : 0.0;
      cells.push_back(util::percent(share));
      if (std::find(kEurope.begin(), kEurope.end(), server.country) !=
          kEurope.end())
        europe_share[c] += share;
    }
    t.add_row(cells);
  }
  t.add_note("Paper: the majority of listed-OUI addresses were collected by "
             "the European servers (AVM's market).");
  t.render(std::cout);

  std::cout << "\nEuropean share: listed "
            << util::percent(europe_share[0]) << ", unlisted "
            << util::percent(europe_share[1]) << ", local "
            << util::percent(europe_share[2]) << "\n";
  // Listed-OUI addresses concentrate in Europe more than the other classes.
  bool pass = europe_share[0] > europe_share[1] &&
              europe_share[0] > europe_share[2];
  std::cout << "Shape check (listed-OUI skews European): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
