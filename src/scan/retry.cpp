#include "scan/retry.hpp"

#include <algorithm>
#include <cmath>

namespace tts::scan {

simnet::SimDuration RetryPolicy::backoff(std::uint32_t retry_index,
                                         util::Rng& rng) const {
  // retry_index is 1-based; treat a (buggy-caller) 0 like the first retry
  // instead of letting the unsigned underflow produce
  // pow(multiplier, 4.29e9) = inf.
  std::uint32_t exponent = retry_index > 0 ? retry_index - 1 : 0;
  double scale = std::pow(multiplier, static_cast<double>(exponent));
  auto base = static_cast<simnet::SimDuration>(
      std::min(static_cast<double>(max_backoff),
               static_cast<double>(base_backoff) * scale));
  base = std::clamp<simnet::SimDuration>(base, 0, max_backoff);
  if (jitter <= 0.0 || base == 0) return base;
  auto spread = static_cast<std::uint64_t>(static_cast<double>(base) * jitter);
  if (spread == 0) return base;
  // The cap bounds the effective delay: clamp after jitter, or a base at
  // or near max_backoff would overshoot the cap by up to jitter x.
  auto jittered = base + static_cast<simnet::SimDuration>(rng.below(spread));
  return std::min(jittered, max_backoff);
}

CircuitBreakerSet::CircuitBreakerSet(BreakerConfig config)
    : config_(config) {}

void CircuitBreakerSet::enroll(obs::Registry& registry,
                               const obs::Labels& labels, const void* owner) {
  registry.enroll(opens_, "scan_breaker_opens", labels, owner);
  registry.enroll(closes_, "scan_breaker_closes", labels, owner);
  registry.enroll(half_opens_, "scan_breaker_half_opens", labels, owner);
  registry.enroll(shed_, "scan_breaker_shed", labels, owner);
  registry.enroll(tripped_gauge_, "scan_breaker_tripped_prefixes", labels,
                  owner);
  registry.enroll(as_opens_, "scan_breaker_as_opens", labels, owner);
  registry.enroll(as_closes_, "scan_breaker_as_closes", labels, owner);
  registry.enroll(as_open_gauge_, "scan_breaker_open_as", labels, owner);
}

bool CircuitBreakerSet::as_open(const net::Ipv6Address& target) const {
  if (config_.as_open_after == 0) return false;
  auto it = by_as_.find(as_key_of(target));
  return it != by_as_.end() && it->second.open;
}

void CircuitBreakerSet::child_tripped(const net::Ipv6Address& prefix,
                                      simnet::SimTime now) {
  if (config_.as_open_after == 0) return;
  net::Ipv6Address as_key = prefix.masked(config_.as_prefix_len);
  AsTier& tier = by_as_[as_key];
  if (++tier.tripped_children >= config_.as_open_after && !tier.open) {
    tier.open = true;
    as_opens_.inc();
    as_open_gauge_.add(1);
    if (on_as_transition_) on_as_transition_(as_key, true, now);
  }
}

void CircuitBreakerSet::child_restored(const net::Ipv6Address& prefix,
                                       simnet::SimTime now) {
  if (config_.as_open_after == 0) return;
  auto it = by_as_.find(prefix.masked(config_.as_prefix_len));
  if (it == by_as_.end() || it->second.tripped_children == 0) return;
  AsTier& tier = it->second;
  --tier.tripped_children;
  if (tier.open && tier.tripped_children < config_.as_open_after) {
    tier.open = false;
    as_closes_.inc();
    as_open_gauge_.add(-1);
    if (on_as_transition_) on_as_transition_(it->first, false, now);
  }
}

CircuitBreakerSet::State CircuitBreakerSet::state(
    const net::Ipv6Address& target) const {
  auto it = by_prefix_.find(key_of(target));
  return it == by_prefix_.end() ? State::kClosed : it->second.state;
}

bool CircuitBreakerSet::would_admit(const net::Ipv6Address& target,
                                    simnet::SimTime now) const {
  auto it = by_prefix_.find(key_of(target));
  // The AS tier sheds only *closed*-prefix targets: open/half-open children
  // keep their own recovery trials, so an escalated AS can still heal.
  if ((it == by_prefix_.end() || it->second.state == State::kClosed) &&
      as_open(target))
    return false;
  if (it == by_prefix_.end()) return true;
  const Breaker& b = it->second;
  switch (b.state) {
    case State::kClosed:
      return true;
    case State::kOpen:
      // Past the cool-down the breaker will half-open on the next launch;
      // admit iff a trial slot would be free.
      return now >= b.open_until && config_.half_open_probes > 0;
    case State::kHalfOpen:
      return b.trials_in_flight < config_.half_open_probes;
  }
  return true;
}

void CircuitBreakerSet::note_launch(const net::Ipv6Address& target,
                                    simnet::SimTime now) {
  net::Ipv6Address key = key_of(target);
  auto it = by_prefix_.find(key);
  if (it == by_prefix_.end()) return;
  Breaker& b = it->second;
  if (b.state == State::kOpen && now >= b.open_until) {
    b.state = State::kHalfOpen;
    b.trials_in_flight = 0;
    half_opens_.inc();
    notify(key, State::kOpen, State::kHalfOpen, now);
  }
  if (b.state == State::kHalfOpen) ++b.trials_in_flight;
}

void CircuitBreakerSet::open(const net::Ipv6Address& prefix, Breaker& b,
                             simnet::SimTime now) {
  State from = b.state;
  if (b.state == State::kClosed) {
    tripped_gauge_.add(1);
    child_tripped(prefix, now);
  }
  b.state = State::kOpen;
  b.open_until = now + config_.open_for;
  b.trials_in_flight = 0;
  b.timeout_streak = 0;
  opens_.inc();
  notify(prefix, from, State::kOpen, now);
}

void CircuitBreakerSet::on_outcome(const net::Ipv6Address& target,
                                   bool conclusive, simnet::SimTime now) {
  net::Ipv6Address key = key_of(target);
  if (conclusive) {
    auto it = by_prefix_.find(key);
    if (it == by_prefix_.end()) return;
    Breaker& b = it->second;
    b.timeout_streak = 0;
    if (b.trials_in_flight > 0) --b.trials_in_flight;
    if (b.state != State::kClosed) {
      // The prefix answered: whatever state the breaker was in, it closes.
      State from = b.state;
      b.state = State::kClosed;
      tripped_gauge_.add(-1);
      child_restored(key, now);
      closes_.inc();
      notify(key, from, State::kClosed, now);
    }
    return;
  }
  Breaker& b = by_prefix_[key];
  if (b.trials_in_flight > 0) --b.trials_in_flight;
  switch (b.state) {
    case State::kClosed:
      if (++b.timeout_streak >= config_.open_after) open(key, b, now);
      break;
    case State::kHalfOpen:
      // The trial probe also went unanswered: back to open, fresh cool-down.
      open(key, b, now);
      break;
    case State::kOpen:
      // A straggler from before the trip; the cool-down already runs.
      break;
  }
}

}  // namespace tts::scan
