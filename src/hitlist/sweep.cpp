#include "hitlist/sweep.hpp"

#include <algorithm>

namespace tts::hitlist {

SweepFeeder::SweepFeeder(scan::ScanEngine& engine,
                         std::vector<net::Ipv6Address> targets,
                         SweepConfig config)
    : engine_(engine),
      config_(config),
      state_(std::make_shared<State>(State{std::move(targets), 0})) {}

void SweepFeeder::start() {
  if (started_) return;
  started_ = true;
  engine_.add_source(
      [state = state_, chunk = config_.chunk](std::size_t max_n) {
        std::size_t n = std::min({max_n, chunk,
                                  state->targets.size() - state->next});
        auto first = state->targets.begin() +
                     static_cast<std::ptrdiff_t>(state->next);
        std::vector<net::Ipv6Address> out(
            first, first + static_cast<std::ptrdiff_t>(n));
        state->next += n;
        return out;
      },
      config_.dataset);
}

}  // namespace tts::hitlist
