// Virtual time. The whole study runs in simulated time: four "weeks" of
// address collection, 10 s - 10 min inter-protocol scan delays, and 3-day
// rescan blackouts all advance this clock, never the wall clock.
#pragma once

#include <cstdint>
#include <string>

namespace tts::simnet {

/// Microseconds since the simulation epoch.
using SimTime = std::int64_t;
/// A span of microseconds.
using SimDuration = std::int64_t;

constexpr SimDuration usec(std::int64_t n) { return n; }
constexpr SimDuration msec(std::int64_t n) { return n * 1000; }
constexpr SimDuration sec(std::int64_t n) { return n * 1000000; }
constexpr SimDuration minutes(std::int64_t n) { return sec(60 * n); }
constexpr SimDuration hours(std::int64_t n) { return minutes(60 * n); }
constexpr SimDuration days(std::int64_t n) { return hours(24 * n); }

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / 1e6;
}

/// Human-readable duration for logs: "2d 03:14:07".
std::string format_duration(SimDuration d);

}  // namespace tts::simnet
