#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "util/rng.hpp"

namespace tts::net {
namespace {

TEST(Packet, ScalarRoundTrip) {
  PacketWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.str16("hello");
  auto wire = w.take();

  PacketReader r(wire);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.str16(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Packet, BigEndianOnTheWire) {
  PacketWriter w;
  w.u32(0x01020304);
  const auto& wire = w.data();
  ASSERT_EQ(wire.size(), 4u);
  EXPECT_EQ(wire[0], 0x01);
  EXPECT_EQ(wire[3], 0x04);
}

// GCC's range analysis cannot see that require() throws before the
// out-of-bounds access it flags on this deliberately short buffer.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
TEST(Packet, ShortReadThrows) {
  std::vector<std::uint8_t> wire = {1, 2, 3};
  PacketReader r(wire);
  r.u16();
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_THROW(r.u16(), ParseError);
  EXPECT_THROW(PacketReader(wire).u64(), ParseError);
  EXPECT_THROW(PacketReader(wire).bytes(4), ParseError);
  EXPECT_THROW(PacketReader(wire).str(4), ParseError);
}
#pragma GCC diagnostic pop

TEST(Packet, SkipAndPosition) {
  std::vector<std::uint8_t> wire(10, 0);
  PacketReader r(wire);
  r.skip(4);
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 6u);
  EXPECT_THROW(r.skip(7), ParseError);
}

TEST(Packet, Str16LengthLimit) {
  PacketWriter w;
  std::string big(0x10000, 'x');
  EXPECT_THROW(w.str16(big), std::length_error);
}

TEST(Packet, PatchByte) {
  PacketWriter w;
  w.u8(0);
  w.str("abc");
  w.patch_u8(0, 3);
  EXPECT_EQ(w.data()[0], 3);
  EXPECT_THROW(w.patch_u8(99, 1), std::out_of_range);
}

TEST(Packet, RandomRoundTripProperty) {
  util::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    PacketWriter w;
    std::vector<std::uint64_t> values;
    std::vector<int> kinds;
    int n = 1 + static_cast<int>(rng.below(20));
    for (int i = 0; i < n; ++i) {
      int kind = static_cast<int>(rng.below(4));
      std::uint64_t v = rng.next();
      kinds.push_back(kind);
      switch (kind) {
        case 0: w.u8(static_cast<std::uint8_t>(v)); values.push_back(v & 0xff); break;
        case 1: w.u16(static_cast<std::uint16_t>(v)); values.push_back(v & 0xffff); break;
        case 2: w.u32(static_cast<std::uint32_t>(v)); values.push_back(v & 0xffffffff); break;
        default: w.u64(v); values.push_back(v); break;
      }
    }
    PacketReader r(w.data());
    for (int i = 0; i < n; ++i) {
      std::uint64_t got = 0;
      switch (kinds[static_cast<std::size_t>(i)]) {
        case 0: got = r.u8(); break;
        case 1: got = r.u16(); break;
        case 2: got = r.u32(); break;
        default: got = r.u64(); break;
      }
      ASSERT_EQ(got, values[static_cast<std::size_t>(i)]);
    }
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Packet, ByteHelpers) {
  auto bytes = to_bytes("abc");
  EXPECT_EQ(bytes.size(), 3u);
  EXPECT_EQ(to_string_payload(bytes), "abc");
}

}  // namespace
}  // namespace tts::net
