#include "simnet/route.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/flight.hpp"
#include "simnet/event_queue.hpp"

namespace tts::simnet {

RoutePlane::RoutePlane(RouteScenario scenario, obs::Registry* registry)
    : scenario_(std::move(scenario)), registry_(registry) {
  // Group the script per prefix, preserving first-appearance order so the
  // compiled tables are a pure function of the scenario, never of a hash.
  /// Keyed lookups only — never iterated.
  std::unordered_map<net::Ipv6Prefix, std::uint32_t, net::Ipv6PrefixHash>
      index_of;
  struct Scripted {
    SimTime effective;
    RouteOp op;
    std::size_t order;  // scenario position, the tie-break at equal times
  };
  std::vector<std::vector<Scripted>> per_route;
  for (std::size_t i = 0; i < scenario_.events.size(); ++i) {
    const RouteEvent& ev = scenario_.events[i];
    auto [it, inserted] = index_of.try_emplace(
        ev.prefix, static_cast<std::uint32_t>(routes_.size()));
    if (inserted) {
      lpm_.announce(ev.prefix, it->second);
      routes_.push_back(Route{ev.prefix, {}});
      per_route.emplace_back();
      // Mark the prefix's top-16-bit coverage in the hot-path prefilter: a
      // /16-or-longer prefix covers exactly one slot, a shorter one a run
      // of 2^(16-len) slots.
      auto base = static_cast<std::size_t>(ev.prefix.address().hi64() >> 48);
      std::size_t slots = ev.prefix.length() >= 16
                              ? 1
                              : std::size_t{1} << (16 - ev.prefix.length());
      for (std::size_t s = 0; s < slots; ++s) top16_.set(base + s);
    }
    // Overflow-safe effective time: an origination near the horizon of
    // representable time saturates instead of wrapping.
    SimTime effective = ev.at > kRouteForever - scenario_.convergence
                            ? kRouteForever
                            : ev.at + scenario_.convergence;
    per_route[it->second].push_back(Scripted{effective, ev.op, i});
  }

  // Compile each prefix's events into sorted, non-overlapping down-windows.
  // Prefixes start announced; redundant events (withdraw while down,
  // announce while up) change nothing and are dropped.
  for (std::size_t r = 0; r < routes_.size(); ++r) {
    std::vector<Scripted>& script = per_route[r];
    std::sort(script.begin(), script.end(),
              [](const Scripted& a, const Scripted& b) {
                if (a.effective != b.effective)
                  return a.effective < b.effective;
                return a.order < b.order;
              });
    bool down = false;
    for (const Scripted& ev : script) {
      if (ev.op == RouteOp::kWithdraw && !down) {
        down = true;
        routes_[r].down.push_back(DownWindow{ev.effective, kRouteForever});
      } else if (ev.op == RouteOp::kAnnounce && down) {
        down = false;
        routes_[r].down.back().until = ev.effective;
        // A zero-width window (announce converging at the same instant as
        // the withdraw) never blackholes anything and commits nothing.
        if (routes_[r].down.back().until == routes_[r].down.back().from)
          routes_[r].down.pop_back();
      }
    }
  }

  // Every down-window edge is one committed transition; ordered by
  // (effective, route) so same-instant commits across prefixes run in
  // first-appearance order.
  for (std::size_t r = 0; r < routes_.size(); ++r) {
    for (const DownWindow& w : routes_[r].down) {
      if (w.from < kRouteForever)
        transitions_.push_back(Transition{
            w.from, static_cast<std::uint32_t>(r), RouteOp::kWithdraw});
      if (w.until < kRouteForever)
        transitions_.push_back(Transition{
            w.until, static_cast<std::uint32_t>(r), RouteOp::kAnnounce});
    }
  }
  std::sort(transitions_.begin(), transitions_.end(),
            [](const Transition& a, const Transition& b) {
              if (a.effective != b.effective) return a.effective < b.effective;
              return a.route < b.route;
            });

  if (!registry_) return;
  registry_->enroll(withdrawals_, "route_withdrawals", {}, this);
  registry_->enroll(announcements_, "route_announcements", {}, this);
  registry_->enroll(blackholed_, "route_blackholed", {}, this);
}

RoutePlane::~RoutePlane() {
  if (registry_) registry_->drop_owner(this);
}

void RoutePlane::set_flight_recorder(obs::FlightRecorder* recorder) {
  flight_ = recorder;
  if (!flight_) return;
  withdraw_note_ = flight_->note("withdraw");
  announce_note_ = flight_->note("announce");
}

bool RoutePlane::withdrawn_scripted(const net::Ipv6Address& dst,
                                    SimTime now) const {
  std::optional<net::AsNumber> route = lpm_.lookup(dst);
  if (!route) return false;
  const std::vector<DownWindow>& down = routes_[*route].down;
  auto it = std::upper_bound(down.begin(), down.end(), now,
                             [](SimTime t, const DownWindow& w) {
                               return t < w.from;
                             });
  if (it == down.begin()) return false;
  --it;  // the last window with from <= now
  return now < it->until;
}

void RoutePlane::arm(EventQueue& events) {
  if (armed_ || transitions_.empty()) return;
  armed_ = true;
  EventQueue::CategoryId cat = events.register_category("route");
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    // The domain-0 event marks the effective instant; the state the rest
    // of the stack reacts to flips at the next window barrier, when every
    // domain is quiescent.
    events.schedule_on(0, transitions_[i].effective, cat,
                       [this, &events, i] {
                         events.run_at_barrier([this, i] { commit(i); });
                       });
  }
}

void RoutePlane::commit(std::size_t index) {
  const Transition& t = transitions_[index];
  const net::Ipv6Prefix& prefix = routes_[t.route].prefix;
  bool withdraw = t.op == RouteOp::kWithdraw;
  if (withdraw)
    withdrawals_.inc();
  else
    announcements_.inc();
  if (flight_)
    flight_->record(withdraw ? obs::FlightKind::kRouteWithdrawn
                             : obs::FlightKind::kRouteAnnounced,
                    withdraw ? withdraw_note_ : announce_note_, /*trace=*/0,
                    static_cast<std::int64_t>(prefix.address().hi64()),
                    static_cast<std::int64_t>(prefix.address().lo64()));
  for (const TransitionFn& fn : subscribers_) fn(prefix, t.op, t.effective);
}

}  // namespace tts::simnet
