// Sharded-dispatch equivalence: the shard count is a performance knob,
// never a semantic one. The same seed must produce bit-identical report
// bytes, identical probe/collection totals, and byte-identical checkpoint
// snapshots whether the synthetic Internet runs on 1, 2, or 4 shards —
// and the conservative barrier protocol must never deliver a cross-shard
// packet into an already-committed window (zero violations).
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/study.hpp"
#include "harness.hpp"

namespace tts::harness {
namespace {

core::StudyConfig shard_config(std::uint32_t shards) {
  auto config = core::make_study_config(core::StudyScale::kTiny);
  config.population.device_scale = 0.05;
  config.runtime.duration = simnet::days(1);
  config.hitlist_scan_start = simnet::hours(12);
  config.drain = simnet::hours(6);
  config.checkpoint_at = simnet::hours(18);
  config.shards.shards = shards;
  // Force real concurrency even on a single-core CI box: the equivalence
  // claim must hold under actual parallel window execution, not just the
  // serial fallback hardware_concurrency() == 1 would pick.
  config.shards.workers = shards > 1 ? 2 : 0;
  return config;
}

struct ShardRun {
  std::uint64_t report = 0;
  std::string checkpoint;
  std::uint64_t results = 0;
  std::uint64_t ntp_probes = 0;
  std::uint64_t hitlist_probes = 0;
  std::uint64_t collector_requests = 0;
  std::uint64_t collector_distinct = 0;
  std::uint64_t hitlist_full = 0;
  std::uint64_t hitlist_public = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t violations = 0;
};

ShardRun run_study(const core::StudyConfig& config) {
  core::Study study(config);
  study.run();
  ShardRun out;
  std::string md = core::render_markdown(core::build_report(study));
  Fnv64 f;
  f.mix_bytes(md);
  f.mix(static_cast<std::uint64_t>(md.size()));
  out.report = f.value();
  out.checkpoint = study.checkpoint_bytes();
  out.results = study.results().size();
  if (study.ntp_engine()) out.ntp_probes = study.ntp_engine()->probes_launched();
  if (study.hitlist_engine())
    out.hitlist_probes = study.hitlist_engine()->probes_launched();
  out.collector_requests = study.collector().total_requests();
  out.collector_distinct = study.collector().distinct_addresses();
  out.hitlist_full = study.hitlist().full.size();
  out.hitlist_public = study.hitlist().public_list.size();
  out.events = study.events_executed();
  out.windows = study.network().events().shard_windows();
  out.violations = study.network().events().shard_violations();
  return out;
}

TEST(ShardEquivalence, ReportAndCheckpointAreBitIdenticalAcrossShardCounts) {
  ShardRun one = run_study(shard_config(1));
  ShardRun two = run_study(shard_config(2));
  ShardRun four = run_study(shard_config(4));

  ASSERT_FALSE(one.checkpoint.empty());
  EXPECT_EQ(one.report, two.report);
  EXPECT_EQ(one.report, four.report);
  EXPECT_EQ(one.checkpoint, two.checkpoint);
  EXPECT_EQ(one.checkpoint, four.checkpoint);
}

TEST(ShardEquivalence, ProbeRecordsAndTotalsAreConserved) {
  ShardRun one = run_study(shard_config(1));
  ShardRun four = run_study(shard_config(4));

  ASSERT_GT(one.results, 0u);
  ASSERT_GT(one.collector_distinct, 0u);
  ASSERT_GT(one.hitlist_full, 0u);
  EXPECT_EQ(one.results, four.results);
  EXPECT_EQ(one.ntp_probes, four.ntp_probes);
  EXPECT_EQ(one.hitlist_probes, four.hitlist_probes);
  EXPECT_EQ(one.collector_requests, four.collector_requests);
  EXPECT_EQ(one.collector_distinct, four.collector_distinct);
  EXPECT_EQ(one.hitlist_full, four.hitlist_full);
  EXPECT_EQ(one.hitlist_public, four.hitlist_public);
  // The window grid is a function of event times only, so even the total
  // event count and window count match across shard counts.
  EXPECT_EQ(one.events, four.events);
  EXPECT_EQ(one.windows, four.windows);
}

TEST(ShardEquivalence, BarrierProtocolNeverViolatesCommittedWindows) {
  for (std::uint32_t shards : {2u, 4u}) {
    ShardRun run = run_study(shard_config(shards));
    EXPECT_GT(run.windows, 0u) << shards << " shards";
    EXPECT_EQ(run.violations, 0u) << shards << " shards";
  }
}

TEST(ShardEquivalence, ShardedRunsStaySeedSensitive) {
  auto config = shard_config(4);
  std::uint64_t base = run_study(config).report;
  config.seed ^= 0x9e3779b97f4a7c15ULL;
  EXPECT_NE(base, run_study(config).report);
}

}  // namespace
}  // namespace tts::harness
