#include "scan/results.hpp"

#include "proto/ports.hpp"

namespace tts::scan {

std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::kHttp: return "HTTP";
    case Protocol::kHttps: return "HTTPS";
    case Protocol::kSsh: return "SSH";
    case Protocol::kMqtt: return "MQTT";
    case Protocol::kMqtts: return "MQTTS";
    case Protocol::kAmqp: return "AMQP";
    case Protocol::kAmqps: return "AMQPS";
    case Protocol::kCoap: return "CoAP";
  }
  return "?";
}

std::string_view label(Protocol p) {
  switch (p) {
    case Protocol::kHttp: return "http";
    case Protocol::kHttps: return "https";
    case Protocol::kSsh: return "ssh";
    case Protocol::kMqtt: return "mqtt";
    case Protocol::kMqtts: return "mqtts";
    case Protocol::kAmqp: return "amqp";
    case Protocol::kAmqps: return "amqps";
    case Protocol::kCoap: return "coap";
  }
  return "?";
}

std::uint16_t port_of(Protocol p) {
  switch (p) {
    case Protocol::kHttp: return proto::kHttpPort;
    case Protocol::kHttps: return proto::kHttpsPort;
    case Protocol::kSsh: return proto::kSshPort;
    case Protocol::kMqtt: return proto::kMqttPort;
    case Protocol::kMqtts: return proto::kMqttsPort;
    case Protocol::kAmqp: return proto::kAmqpPort;
    case Protocol::kAmqps: return proto::kAmqpsPort;
    case Protocol::kCoap: return proto::kCoapPort;
  }
  return 0;
}

bool is_tls(Protocol p) {
  return p == Protocol::kHttps || p == Protocol::kMqtts ||
         p == Protocol::kAmqps;
}

std::string_view to_string(Dataset d) {
  switch (d) {
    case Dataset::kNtp: return "Our Data";
    case Dataset::kHitlist: return "TUM IPv6 Hitlist";
    case Dataset::kRyeLevin: return "Rye and Levin";
  }
  return "?";
}

std::string_view label(Dataset d) {
  switch (d) {
    case Dataset::kNtp: return "ntp";
    case Dataset::kHitlist: return "hitlist";
    case Dataset::kRyeLevin: return "rye-levin";
  }
  return "?";
}

std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::kSuccess: return "success";
    case Outcome::kRefused: return "refused";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kTlsFailed: return "tls-failed";
    case Outcome::kMalformed: return "malformed";
  }
  return "?";
}

void ResultStore::add(ScanRecord record) {
  ++counts_[static_cast<std::size_t>(record.dataset)]
           [static_cast<std::size_t>(record.protocol)]
           [static_cast<std::size_t>(record.outcome)];
  if (record.outcome == Outcome::kSuccess)
    records_.push_back(std::move(record));
}

std::vector<const ScanRecord*> ResultStore::successes(
    Dataset dataset, Protocol protocol) const {
  std::vector<const ScanRecord*> out;
  for (const auto& r : records_)
    if (r.dataset == dataset && r.protocol == protocol) out.push_back(&r);
  return out;
}

std::uint64_t ResultStore::count(Dataset dataset, Protocol protocol,
                                 Outcome outcome) const {
  return counts_[static_cast<std::size_t>(dataset)]
                [static_cast<std::size_t>(protocol)]
                [static_cast<std::size_t>(outcome)];
}

std::uint64_t ResultStore::total(Dataset dataset, Protocol protocol) const {
  std::uint64_t n = 0;
  for (std::size_t o = 0; o < kOutcomeCount; ++o)
    n += counts_[static_cast<std::size_t>(dataset)]
                [static_cast<std::size_t>(protocol)][o];
  return n;
}

std::uint64_t ResultStore::total(Dataset dataset) const {
  std::uint64_t n = 0;
  for (std::size_t p = 0; p < kProtocolCount; ++p)
    n += total(dataset, static_cast<Protocol>(p));
  return n;
}

}  // namespace tts::scan
