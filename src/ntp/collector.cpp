#include "ntp/collector.hpp"

#include <algorithm>

#include "util/format.hpp"
#include "util/serialize.hpp"

namespace tts::ntp {

AddressCollector::AddressCollector(obs::Registry* registry)
    : registry_(registry) {
  if (!registry_) return;
  registry_->enroll(requests_, "ntp_requests", {}, this);
  registry_->enroll(distinct_, "ntp_distinct_addresses", {}, this);
  registry_->enroll(dedup_hits_, "ntp_dedup_hits", {}, this);
}

AddressCollector::~AddressCollector() {
  if (registry_) registry_->drop_owner(this);
}

bool AddressCollector::record(const net::Ipv6Address& addr, ServerId server,
                              simnet::SimTime at) {
  return record_batch({&addr, 1}, server, at) == 1;
}

std::size_t AddressCollector::record_batch(
    std::span<const net::Ipv6Address> addrs, ServerId server,
    simnet::SimTime at) {
  if (addrs.empty()) return 0;
  requests_.inc(addrs.size());
  fresh_scratch_.clear();

  obs::Counter* server_counter = nullptr;
  for (const auto& addr : addrs) {
    auto [seq, fresh] = store_.insert(addr);
    if (!fresh) {
      dedup_hits_.inc();
      continue;
    }
    distinct_.inc();
    if (!server_counter) {
      auto [sit, created] = per_server_.try_emplace(server);
      if (created && registry_)
        registry_->enroll(sit->second, "ntp_server_distinct",
                          {{"server", util::cat(server)}}, this);
      server_counter = &sit->second;
    }
    server_counter->inc();
    ++daily_new_[at / simnet::days(1)];
    fresh_scratch_.push_back(addr);
    // Per-address subscribers fire inside the loop, exactly as a loop of
    // record() calls would — batch ingest must not reorder the feed.
    CollectedAddress rec{addr, server, at};
    for (const auto& fn : subscribers_) fn(rec);
  }

  if (!fresh_scratch_.empty()) {
    CollectedBatch batch{fresh_scratch_, server, at};
    for (const auto& fn : batch_subscribers_) fn(batch);
  }
  return fresh_scratch_.size();
}

std::uint64_t AddressCollector::server_distinct(ServerId server) const {
  auto it = per_server_.find(server);
  return it == per_server_.end() ? 0 : it->second.value();
}

void AddressCollector::save_state(util::ByteWriter& w) const {
  store_.save(w);
  // Keyed lookups only above; serialization sorts by server id so the
  // section bytes are a function of collected state, not hash layout.
  std::vector<std::pair<ServerId, std::uint64_t>> servers;
  servers.reserve(per_server_.size());
  // ttslint: allow(unordered-iter) reason=entries are sorted by server id below before serialization
  for (const auto& [id, counter] : per_server_)
    servers.emplace_back(id, counter.value());
  std::sort(servers.begin(), servers.end());
  w.u32(static_cast<std::uint32_t>(servers.size()));
  for (const auto& [id, count] : servers) {
    w.u32(id);
    w.u64(count);
  }
  w.u32(static_cast<std::uint32_t>(daily_new_.size()));
  for (const auto& [day, count] : daily_new_) {
    w.i64(day);
    w.u64(count);
  }
  w.u64(requests_.value());
  w.u64(dedup_hits_.value());
}

CollectorState AddressCollector::decode_state(util::ByteReader& r) {
  CollectorState state;
  state.store = net::AddressStore::load(r);
  std::uint32_t nservers = r.u32();
  state.per_server.reserve(nservers);
  for (std::uint32_t i = 0; i < nservers; ++i) {
    ServerId id = r.u32();
    std::uint64_t count = r.u64();
    state.per_server.emplace_back(id, count);
  }
  std::uint32_t ndays = r.u32();
  for (std::uint32_t i = 0; i < ndays; ++i) {
    std::int64_t day = r.i64();
    state.daily_new[day] = r.u64();
  }
  state.requests = r.u64();
  state.dedup_hits = r.u64();
  return state;
}

}  // namespace tts::ntp
