// C4 fixture: manual .lock()/.unlock() on mutex-typed receivers should be
// lock_guard/scoped_lock. Linted with --allow-thread=scoped_lock.cc so
// the mutex declarations themselves (C1) stay out of the way; the type
// environment distinguishes mutexes from weak_ptr, so weak_ptr::lock()
// is never a finding.
#include <memory>
#include <mutex>
#include <shared_mutex>

class Guarded {
 public:
  void manual() {
    mu_.lock();    // FINDING(scoped-lock)
    mu_.unlock();  // FINDING(scoped-lock)
  }
  void scoped() {
    std::lock_guard<std::mutex> lk(mu_);
  }
  void shared_manual() {
    rw_mu_.lock();    // FINDING(scoped-lock)
    rw_mu_.unlock();  // FINDING(scoped-lock)
  }
  std::shared_ptr<int> promote() {
    return weak_.lock();  // weak_ptr promotion, not a mutex acquire
  }
  void suppressed() {
    mu_.lock();  // ttslint: allow(scoped-lock) reason=fixture exercises split-scope suppression
    mu_.unlock();  // ttslint: allow(scoped-lock) reason=fixture exercises split-scope suppression
  }

 private:
  std::mutex mu_;
  std::shared_mutex rw_mu_;
  std::weak_ptr<int> weak_;
};
